package proxy

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"appvsweb/internal/capture"
)

// testWorld wires an origin CA, a resolver, a proxy, and a client trust
// store into a miniature internet.
type testWorld struct {
	t        testing.TB
	originCA *CA
	proxyCA  *CA
	resolver *MapResolver
	sink     *capture.MemSink
	proxy    *Proxy
}

func newWorld(t testing.TB) *testWorld {
	t.Helper()
	originCA, err := NewCA("Origin Root")
	if err != nil {
		t.Fatal(err)
	}
	proxyCA, err := NewCA("Meddle Interception CA")
	if err != nil {
		t.Fatal(err)
	}
	w := &testWorld{
		t:        t,
		originCA: originCA,
		proxyCA:  proxyCA,
		resolver: NewMapResolver(),
		sink:     capture.NewMemSink(),
	}
	p, err := New(Config{
		CA:         proxyCA,
		Resolver:   w.resolver,
		OriginPool: originCA.Pool(),
		Sink:       w.sink,
		ClientID:   "test-device",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	w.proxy = p
	return w
}

// serveTLS starts a TLS origin for host and registers it.
func (w *testWorld) serveTLS(host string, handler http.Handler) {
	w.t.Helper()
	leaf, err := w.originCA.Leaf(host)
	if err != nil {
		w.t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{Certificates: []tls.Certificate{*leaf}})
	if err != nil {
		w.t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln) //nolint:errcheck
	w.t.Cleanup(func() { srv.Close() })
	w.resolver.Register(host, "443", ln.Addr().String())
}

// servePlain starts a plaintext origin for host and registers it.
func (w *testWorld) servePlain(host string, handler http.Handler) {
	w.t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		w.t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln) //nolint:errcheck
	w.t.Cleanup(func() { srv.Close() })
	w.resolver.Register(host, "80", ln.Addr().String())
}

// client returns a device HTTP client trusting both CAs (the proxy CA is
// "installed" on the device; origin CA stands in for the public roots).
func (w *testWorld) client() *http.Client {
	pool := w.proxyCA.Pool()
	pool.AddCert(w.originCA.cert)
	return &http.Client{
		Transport: ClientTransport(w.proxy.URL(), pool),
		Timeout:   5 * time.Second,
	}
}

func echoHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		rw.Header().Set("X-Origin", "yes")
		fmt.Fprintf(rw, "echo:%s:%s:%s", r.Method, r.URL.Path, string(body))
	})
}

func TestHTTPSInterception(t *testing.T) {
	w := newWorld(t)
	w.serveTLS("svc.example", echoHandler())
	resp, err := w.client().Get("https://svc.example/hello?user=jane")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "echo:GET:/hello:" {
		t.Errorf("body = %q", body)
	}
	if resp.Header.Get("X-Origin") != "yes" {
		t.Error("origin header lost")
	}
	flows := w.sink.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(flows))
	}
	f := flows[0]
	if f.Protocol != capture.HTTPS || !f.Intercepted {
		t.Errorf("flow not intercepted HTTPS: %+v", f)
	}
	if f.Host != "svc.example" || f.URL != "https://svc.example/hello?user=jane" {
		t.Errorf("flow host/url: %q %q", f.Host, f.URL)
	}
	if f.Status != 200 || f.Client != "test-device" {
		t.Errorf("status=%d client=%q", f.Status, f.Client)
	}
	if f.BytesDown <= 0 || f.BytesUp <= 0 {
		t.Errorf("byte accounting: up=%d down=%d", f.BytesUp, f.BytesDown)
	}
}

func TestHTTPSBodyCapture(t *testing.T) {
	w := newWorld(t)
	w.serveTLS("api.example", echoHandler())
	resp, err := w.client().Post("https://api.example/login", "application/json",
		strings.NewReader(`{"user":"jane","password":"pw"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	f := w.sink.Flows()[0]
	if f.Method != "POST" || !strings.Contains(f.RequestBody, `"password":"pw"`) {
		t.Errorf("body not captured: %+v", f)
	}
	if f.RequestHeaders["Content-Type"] != "application/json" {
		t.Errorf("headers not captured: %v", f.RequestHeaders)
	}
}

func TestPlainHTTPProxying(t *testing.T) {
	w := newWorld(t)
	w.servePlain("plain.example", echoHandler())
	resp, err := w.client().Get("http://plain.example/p?zip=02115")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "echo:GET:/p:" {
		t.Errorf("body = %q", body)
	}
	f := w.sink.Flows()[0]
	if f.Protocol != capture.HTTP || f.Intercepted {
		t.Errorf("flow = %+v", f)
	}
	if !f.Plaintext() {
		t.Error("plaintext flow not marked")
	}
}

func TestUpstreamDownHTTPS(t *testing.T) {
	w := newWorld(t)
	resp, err := w.client().Get("https://nowhere.example/x")
	if err != nil {
		t.Fatalf("client error: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
	f := w.sink.Flows()[0]
	if f.Status != http.StatusBadGateway || f.ResponseHeaders["X-Proxy-Error"] == "" {
		t.Errorf("flow = %+v", f)
	}
}

func TestUpstreamDownHTTP(t *testing.T) {
	w := newWorld(t)
	resp, err := w.client().Get("http://nowhere.example/x")
	if err != nil {
		t.Fatalf("client error: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestCertificatePinningDefeatsInterception(t *testing.T) {
	w := newWorld(t)
	w.serveTLS("pinned.example", echoHandler())
	// The app pins the true origin certificate.
	pin, err := w.originCA.LeafFingerprint("pinned.example")
	if err != nil {
		t.Fatal(err)
	}
	pool := w.proxyCA.Pool()
	pool.AddCert(w.originCA.cert)
	client := &http.Client{
		Transport: PinnedTransport(w.proxy.URL(), pool, pin),
		Timeout:   5 * time.Second,
	}
	_, err = client.Get("https://pinned.example/secret")
	if err == nil {
		t.Fatal("pinned client accepted minted certificate")
	}
	if !strings.Contains(err.Error(), "pin mismatch") {
		t.Errorf("error = %v", err)
	}
	// The proxy records the aborted tunnel with no intercepted content.
	// Recording happens on the proxy's connection goroutine after the
	// client has already errored, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for w.sink.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	flows := w.sink.Flows()
	if len(flows) != 1 || flows[0].Intercepted || flows[0].Status != 0 {
		t.Errorf("tunnel failure not recorded: %+v", flows)
	}
}

func TestPinnedTransportAcceptsDirectOrigin(t *testing.T) {
	// Without the proxy in the path, the pin verifies and the request
	// succeeds — the control case.
	originCA, _ := NewCA("Origin Root")
	leaf, err := originCA.Leaf("direct.example")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{Certificates: []tls.Certificate{*leaf}})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: echoHandler()}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	pin := Fingerprint(leaf.Leaf)
	tr := &http.Transport{
		TLSClientConfig: &tls.Config{
			RootCAs:               originCA.Pool(),
			ServerName:            "direct.example",
			VerifyPeerCertificate: PinnedTransport(&url.URL{Scheme: "http", Host: "unused"}, originCA.Pool(), pin).TLSClientConfig.VerifyPeerCertificate,
		},
	}
	client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	resp, err := client.Get("https://" + ln.Addr().String() + "/ok")
	if err != nil {
		t.Fatalf("direct pinned request failed: %v", err)
	}
	resp.Body.Close()
}

func TestVirtualClockStampsFlows(t *testing.T) {
	originCA, _ := NewCA("Origin Root")
	proxyCA, _ := NewCA("Proxy CA")
	resolver := NewMapResolver()
	sink := capture.NewMemSink()
	fixed := time.Date(2016, 4, 15, 10, 30, 0, 0, time.UTC)
	p, err := New(Config{
		CA: proxyCA, Resolver: resolver, OriginPool: originCA.Pool(), Sink: sink,
		Now: func() time.Time { return fixed },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	leaf, _ := originCA.Leaf("clock.example")
	ln, _ := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{Certificates: []tls.Certificate{*leaf}})
	srv := &http.Server{Handler: echoHandler()}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	resolver.Register("clock.example", "443", ln.Addr().String())

	pool := proxyCA.Pool()
	client := &http.Client{Transport: ClientTransport(p.URL(), pool), Timeout: 5 * time.Second}
	resp, err := client.Get("https://clock.example/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := sink.Flows()[0].Start; !got.Equal(fixed) {
		t.Errorf("flow time = %v, want %v", got, fixed)
	}
}

func TestConcurrentRequests(t *testing.T) {
	w := newWorld(t)
	w.serveTLS("conc.example", echoHandler())
	client := w.client()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Get(fmt.Sprintf("https://conc.example/r/%d", i))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := w.sink.Len(); got != 32 {
		t.Errorf("flows = %d, want 32", got)
	}
}

func TestNilCARefusesConnect(t *testing.T) {
	resolver := NewMapResolver()
	sink := capture.NewMemSink()
	p, err := New(Config{Resolver: resolver, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	client := &http.Client{Transport: ClientTransport(p.URL(), nil), Timeout: 5 * time.Second}
	_, err = client.Get("https://x.example/")
	if err == nil {
		t.Fatal("CONNECT accepted without CA")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Sink: capture.NewMemSink()}); err == nil {
		t.Error("missing resolver accepted")
	}
	if _, err := New(Config{Resolver: NewMapResolver()}); err == nil {
		t.Error("missing sink accepted")
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	w := newWorld(t)
	if err := w.proxy.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.proxy.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCALeafCachedAndVerifiable(t *testing.T) {
	ca, err := NewCA("Test CA")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ca.Leaf("host.example")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ca.Leaf("host.example")
	if a != b {
		t.Error("leaf not cached")
	}
	opts := x509.VerifyOptions{Roots: ca.Pool(), DNSName: "host.example"}
	if _, err := a.Leaf.Verify(opts); err != nil {
		t.Errorf("leaf does not verify: %v", err)
	}
	if Fingerprint(a.Leaf) != Fingerprint(b.Leaf) {
		t.Error("fingerprint unstable")
	}
	if !strings.Contains(string(ca.CertPEM()), "BEGIN CERTIFICATE") {
		t.Error("CertPEM not PEM")
	}
}

func TestResolver(t *testing.T) {
	r := NewMapResolver()
	r.Register("a.example", "443", "127.0.0.1:1111")
	r.Register("*.cdn.example", "443", "127.0.0.1:2222")
	if addr, err := r.Resolve("A.EXAMPLE", "443"); err != nil || addr != "127.0.0.1:1111" {
		t.Errorf("resolve = %q, %v", addr, err)
	}
	if addr, err := r.Resolve("x.cdn.example", "443"); err != nil || addr != "127.0.0.1:2222" {
		t.Errorf("wildcard = %q, %v", addr, err)
	}
	if addr, err := r.Resolve("deep.x.cdn.example", "443"); err != nil || addr != "127.0.0.1:2222" {
		t.Errorf("deep wildcard = %q, %v", addr, err)
	}
	if _, err := r.Resolve("missing.example", "443"); err == nil {
		t.Error("missing host resolved")
	}
	var dnsErr *net.DNSError
	_, err := r.Resolve("missing.example", "443")
	if !errors.As(err, &dnsErr) || !dnsErr.IsNotFound {
		t.Errorf("error type = %T %v", err, err)
	}
	if hosts := r.Hosts(); len(hosts) != 1 || hosts[0] != "a.example" {
		t.Errorf("Hosts = %v", hosts)
	}
}

func TestWriteSimpleResponseParseable(t *testing.T) {
	var buf strings.Builder
	hdr := http.Header{"X-A": {"1"}, "Transfer-Encoding": {"chunked"}}
	n, err := writeSimpleResponse(&buf, 201, hdr, []byte("hello"))
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "HTTP/1.1 201 Created\r\n") {
		t.Errorf("status line: %q", s)
	}
	if strings.Contains(s, "Transfer-Encoding") {
		t.Error("hop header leaked")
	}
	if !strings.Contains(s, "Content-Length: 5\r\n") || !strings.HasSuffix(s, "hello") {
		t.Errorf("framing: %q", s)
	}
}

func BenchmarkProxyHTTPS(b *testing.B) {
	originCA, _ := NewCA("Origin Root")
	proxyCA, _ := NewCA("Proxy CA")
	resolver := NewMapResolver()
	var sink capture.CountingSink
	p, err := New(Config{CA: proxyCA, Resolver: resolver, OriginPool: originCA.Pool(), Sink: &sink})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	leaf, _ := originCA.Leaf("bench.example")
	ln, _ := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{Certificates: []tls.Certificate{*leaf}})
	srv := &http.Server{Handler: echoHandler()}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	resolver.Register("bench.example", "443", ln.Addr().String())

	client := &http.Client{Transport: ClientTransport(p.URL(), proxyCA.Pool()), Timeout: 10 * time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get("https://bench.example/r")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
}

func TestProxyStats(t *testing.T) {
	w := newWorld(t)
	w.serveTLS("stats.example", echoHandler())
	client := w.client()
	for i := 0; i < 3; i++ {
		resp, err := client.Get("https://stats.example/x")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	resp, err := client.Get("https://missing.example/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	s := w.proxy.Stats()
	if s.Tunnels != 4 {
		t.Errorf("tunnels = %d, want 4", s.Tunnels)
	}
	if s.Requests != 4 {
		t.Errorf("requests = %d, want 4", s.Requests)
	}
	if s.UpstreamErrors != 1 {
		t.Errorf("upstream errors = %d, want 1", s.UpstreamErrors)
	}
	if s.BytesUp <= 0 || s.BytesDown <= 0 {
		t.Errorf("bytes = %+v", s)
	}
	if s.TunnelFailures != 0 {
		t.Errorf("tunnel failures = %d", s.TunnelFailures)
	}
}
