package proxy

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"appvsweb/internal/capture"
	"appvsweb/internal/obs"
	"appvsweb/internal/pii"
)

// InlineAction selects what the inline gateway does when a flow carries
// ground-truth PII (docs/inline.md).
type InlineAction string

const (
	// InlineOff disables the gateway.
	InlineOff InlineAction = ""
	// InlineLog annotates the flow and emits a verdict; content is
	// forwarded untouched.
	InlineLog InlineAction = "log"
	// InlineRedact rewrites matched values in the URL and body with
	// pii.RedactionMark before forwarding (headers are observed but not
	// rewritten, matching the Rewriter seam).
	InlineRedact InlineAction = "redact"
	// InlineBlock refuses the request with a synthesized 403; nothing is
	// forwarded upstream. The tunnel stays open for later requests.
	InlineBlock InlineAction = "block"
)

// ParseInlineAction parses the -inline flag value.
func ParseInlineAction(s string) (InlineAction, error) {
	switch a := InlineAction(strings.ToLower(strings.TrimSpace(s))); a {
	case InlineOff, InlineLog, InlineRedact, InlineBlock:
		return a, nil
	default:
		return InlineOff, fmt.Errorf("inline: unknown action %q (want log, redact, or block)", s)
	}
}

// Inline is the streaming detect-and-mitigate gateway the proxy runs on
// its hot path: request bodies are scanned chunk-by-chunk as they transit
// (pii.StreamScanner carries DFA state across Writes, so needles split
// between chunks are still caught), URLs and headers are batch-scanned at
// forwarding time, and the configured action is applied per flow. One
// Inline is shared by every exchange of a proxy; all methods are safe for
// concurrent use, and safe on a nil receiver (no-ops) so the proxy needs
// no guards.
type Inline struct {
	m        *pii.Matcher
	redactor *pii.Redactor // non-nil only for InlineRedact
	action   InlineAction

	pool sync.Pool // of *pii.StreamScanner
	gets atomic.Int64
	puts atomic.Int64

	metrics inlineMetrics
}

// inlineMetrics are resolved once at construction (obs doc.go: resolve
// handles outside hot paths). The verdict counter is the gateway's series
// of the labeled proxy.inline.verdicts family.
type inlineMetrics struct {
	flows   *obs.Counter
	bytes   *obs.Counter
	matches *obs.Counter
	verdict *obs.Counter
}

// NewInline builds a gateway for a ground-truth record. A nil record or
// InlineOff returns nil (gateway disabled).
func NewInline(rec *pii.Record, action InlineAction, reg *obs.Registry) *Inline {
	if rec == nil || action == InlineOff {
		return nil
	}
	if reg == nil {
		reg = obs.Default
	}
	g := &Inline{
		m:      pii.NewMatcher(rec),
		action: action,
		metrics: inlineMetrics{
			flows:   reg.Counter("proxy.inline.flows_total"),
			bytes:   reg.Counter("proxy.inline.bytes_total"),
			matches: reg.Counter("proxy.inline.matches_total"),
			verdict: reg.CounterVec("proxy.inline.verdicts", "action").WithLabelValues(string(action)),
		},
	}
	if action == InlineRedact {
		g.redactor = pii.NewRedactor(rec)
	}
	return g
}

// Action returns the configured mitigation action.
func (g *Inline) Action() InlineAction {
	if g == nil {
		return InlineOff
	}
	return g.action
}

// PoolStats reports how many scanner checkouts and returns the pool has
// seen. After every in-flight exchange finishes (including ones whose
// client disconnected mid-body), gets == puts — the leak invariant the
// cancellation tests poll.
func (g *Inline) PoolStats() (gets, puts int64) {
	if g == nil {
		return 0, 0
	}
	return g.gets.Load(), g.puts.Load()
}

// inlineInspection is the per-exchange handle: one checked-out stream
// scanner plus the finish/release lifecycle. Used by a single goroutine.
type inlineInspection struct {
	g        *Inline
	ss       *pii.StreamScanner
	released bool
}

// begin checks a scanner out of the pool for one exchange.
func (g *Inline) begin() *inlineInspection {
	if g == nil {
		return nil
	}
	g.gets.Add(1)
	ss, _ := g.pool.Get().(*pii.StreamScanner)
	if ss == nil {
		ss = g.m.NewStreamScanner("body")
	} else {
		ss.Reset("body")
	}
	return &inlineInspection{g: g, ss: ss}
}

// release returns the scanner to the pool. Idempotent; the proxy defers it
// so a client disconnect mid-stream cannot leak the scanner.
func (in *inlineInspection) release() {
	if in == nil || in.released {
		return
	}
	in.released = true
	in.g.pool.Put(in.ss)
	in.ss = nil
	in.g.puts.Add(1)
}

// tee wraps a request body so every chunk feeds the stream scanner as it
// transits toward the upstream read. Nil-safe: with no gateway the body
// passes through untouched.
func (in *inlineInspection) tee(rc io.ReadCloser) io.ReadCloser {
	if in == nil || rc == nil {
		return rc
	}
	return &inlineTee{rc: rc, in: in}
}

type inlineTee struct {
	rc io.ReadCloser
	in *inlineInspection
}

func (t *inlineTee) Read(p []byte) (int, error) {
	n, err := t.rc.Read(p)
	if n > 0 {
		t.in.ss.Write(p[:n]) //nolint:errcheck // never fails
		t.in.g.metrics.bytes.Add(int64(n))
	}
	return n, err
}

func (t *inlineTee) Close() error { return t.rc.Close() }

// finish combines the body stream's matches with batch scans of the URL
// and headers into the flow's verdict, applying the redact action to the
// URL and body. It returns a nil verdict (and the inputs unchanged) when
// the flow carries no ground-truth PII. Must be called before release.
func (in *inlineInspection) finish(absURL string, hdr http.Header, body []byte) (*capture.InlineVerdict, string, []byte) {
	if in == nil {
		return nil, absURL, body
	}
	g := in.g
	iv, types := in.collect(absURL, hdr)
	if iv == nil {
		return nil, absURL, body
	}
	switch g.action {
	case InlineRedact:
		newURL, _ := g.redactor.Redact(absURL, types)
		newBody, _ := g.redactor.Redact(string(body), types)
		iv.Mitigated = newURL != absURL || newBody != string(body)
		return iv, newURL, []byte(newBody)
	case InlineBlock:
		iv.Mitigated = true
	}
	return iv, absURL, body
}

// socketVerdict builds the verdict for a relayed WebSocket session: the
// handshake URL and headers batch-scanned plus every stream match the
// frame relay fed through the scanner. Unlike finish, no rewrite happens
// here — for sockets, mitigation already ran frame-by-frame mid-relay, and
// the caller reports whether it changed (or refused) anything.
func (in *inlineInspection) socketVerdict(absURL string, hdr http.Header, mitigated bool) *capture.InlineVerdict {
	if in == nil {
		return nil
	}
	iv, _ := in.collect(absURL, hdr)
	if iv == nil {
		return nil
	}
	iv.Mitigated = mitigated
	return iv
}

// collect runs the batch URL/header scans, merges them with the stream
// scanner's body matches, and assembles the verdict skeleton (action not
// yet applied, Mitigated unset). Nil when the exchange carried no
// ground-truth PII. Counts the exchange in the gateway metrics either way.
func (in *inlineInspection) collect(absURL string, hdr http.Header) (*capture.InlineVerdict, pii.TypeSet) {
	g := in.g
	g.metrics.flows.Inc()

	urlMatches := g.m.Scan("url", absURL)
	hdrMatches := g.m.Scan("headers", headerText(hdr))
	bodyMatches := in.ss.Matches()
	total := len(urlMatches) + len(hdrMatches) + len(bodyMatches)
	if total == 0 {
		var zero pii.TypeSet
		return nil, zero
	}
	g.metrics.matches.Add(int64(total))
	g.metrics.verdict.Inc()

	var types pii.TypeSet
	evidence := make([]string, 0, total)
	for _, m := range urlMatches {
		types = types.Add(m.Type)
		evidence = append(evidence, m.Describe())
	}
	for _, m := range hdrMatches {
		types = types.Add(m.Type)
		evidence = append(evidence, m.Describe())
	}
	for _, sm := range bodyMatches {
		types = types.Add(sm.Type)
		// Body occurrences carry absolute stream offsets — the provenance
		// a post-hoc batch scan of a redacted flow could not reconstruct.
		evidence = append(evidence, fmt.Sprintf("%s @%d..%d", sm.Describe(), sm.Start, sm.End))
	}
	abbrevs := make([]string, 0, types.Len())
	for _, t := range types.Types() {
		abbrevs = append(abbrevs, t.Abbrev())
	}
	return &capture.InlineVerdict{
		Action:   string(g.action),
		Types:    abbrevs,
		Evidence: evidence,
	}, types
}

// headerText serializes headers exactly like capture.Flow.Sections, so the
// inline gateway and the post-hoc detector scan the same bytes.
func headerText(hdr http.Header) string {
	keys := make([]string, 0, len(hdr))
	for k := range hdr {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, strings.Join(hdr[k], ", "))
	}
	return b.String()
}

// blockPage renders the deterministic 403 body for a blocked flow: the
// action, the PII classes, and one evidence line per match.
func blockPage(iv *capture.InlineVerdict) []byte {
	var b strings.Builder
	b.WriteString("403 Forbidden: request blocked by the inline PII gateway\n\n")
	b.WriteString("The request carried ground-truth PII and the proxy's inline action is \"block\".\n")
	fmt.Fprintf(&b, "classes: %s\n", strings.Join(iv.Types, ","))
	b.WriteString("evidence:\n")
	for _, e := range iv.Evidence {
		fmt.Fprintf(&b, "  - %s\n", e)
	}
	return []byte(b.String())
}
