package proxy

import (
	"bufio"
	"crypto/tls"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"appvsweb/internal/capture"
	"appvsweb/internal/obs"
	"appvsweb/internal/obs/trace"
	"appvsweb/internal/pii"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// inlineRecord is the fixed ground-truth identity the gateway tests plant
// and detect. Values mirror the pii package's test record shape.
func inlineRecord() *pii.Record {
	return &pii.Record{
		Username: "jdoe88",
		Email:    "jane.doe.test@example.com",
		Phone:    "6175551234",
		ZIP:      "02115",
		IMEI:     "356938035643809",
	}
}

// newInlineWorld builds a testWorld whose proxy runs the inline gateway
// with the given action, plus the tracer and private metric registry the
// assertions read.
func newInlineWorld(t testing.TB, action InlineAction) (*testWorld, *Inline, *trace.Tracer, *obs.Registry) {
	t.Helper()
	originCA, err := NewCA("Origin Root")
	if err != nil {
		t.Fatal(err)
	}
	proxyCA, err := NewCA("Meddle Interception CA")
	if err != nil {
		t.Fatal(err)
	}
	w := &testWorld{
		t:        t,
		originCA: originCA,
		proxyCA:  proxyCA,
		resolver: NewMapResolver(),
		sink:     capture.NewMemSink(),
	}
	reg := obs.New()
	tracer := trace.New(trace.Options{})
	gw := NewInline(inlineRecord(), action, reg)
	if gw == nil {
		t.Fatalf("NewInline(%q) = nil", action)
	}
	p, err := New(Config{
		CA:         proxyCA,
		Resolver:   w.resolver,
		OriginPool: originCA.Pool(),
		Sink:       w.sink,
		ClientID:   "test-device",
		Inline:     gw,
		Tracer:     tracer,
		SpanID:     "s1",
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	w.proxy = p
	return w, gw, tracer, reg
}

// golden compares got against testdata/golden/<name>, rewriting the file
// under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// inlineVerdictEvents filters the tracer's ring for gateway verdicts.
func inlineVerdictEvents(tr *trace.Tracer) []trace.Event {
	var out []trace.Event
	for _, e := range tr.Events() {
		if e.Type == trace.EvInlineVerdict {
			out = append(out, e)
		}
	}
	return out
}

// TestInlineRedactGolden: a tunneled POST whose URL and body carry PII
// under several encodings reaches the origin redacted. The echo origin
// reflects what it received, so the client-visible response body is the
// exact content that crossed the network — pinned as a golden fixture.
func TestInlineRedactGolden(t *testing.T) {
	w, gw, tracer, _ := newInlineWorld(t, InlineRedact)
	w.serveTLS("svc.example", echoHandler())
	rec := inlineRecord()

	body := "email=" + rec.Email +
		"&imei_b64=" + pii.Encode(pii.EncBase64, rec.IMEI) +
		"&note=hello"
	resp, err := w.client().Post("https://svc.example/login?user="+rec.Username,
		"application/x-www-form-urlencoded", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	echoed, _ := io.ReadAll(resp.Body)
	golden(t, "redacted_body.txt", echoed)

	if strings.Contains(string(echoed), rec.Email) || strings.Contains(string(echoed), rec.Username) {
		t.Fatalf("PII reached the origin: %q", echoed)
	}
	f := w.sink.Flows()[0]
	if f.Inline == nil || f.Inline.Action != string(InlineRedact) || !f.Inline.Mitigated {
		t.Fatalf("flow verdict = %+v", f.Inline)
	}
	if !f.Rewritten {
		t.Error("redacted flow not marked Rewritten")
	}
	// The recorded flow reflects what actually reached the network.
	if strings.Contains(f.RequestBody, rec.Email) || strings.Contains(f.URL, rec.Username) {
		t.Errorf("recorded flow holds unredacted PII: url=%q body=%q", f.URL, f.RequestBody)
	}
	if !strings.Contains(f.RequestBody, pii.RedactionMark) {
		t.Errorf("redaction mark missing from body: %q", f.RequestBody)
	}
	evs := inlineVerdictEvents(tracer)
	if len(evs) != 1 || evs[0].Attrs["action"] != "redact" || evs[0].Attrs["host"] != "svc.example" {
		t.Errorf("verdict events = %+v", evs)
	}
	if gets, puts := gw.PoolStats(); gets != puts || gets == 0 {
		t.Errorf("scanner pool: gets=%d puts=%d", gets, puts)
	}
}

// TestInlineBlockGolden: a flow carrying PII is refused with the
// synthesized 403 page (golden fixture), nothing reaches the origin, the
// tunnel survives for later clean requests, and the blocked flow still
// carries the complete capture→match→action chain: recorded content,
// match evidence with stream offsets, verdict annotation, and a live
// trace event.
func TestInlineBlockGolden(t *testing.T) {
	w, _, tracer, reg := newInlineWorld(t, InlineBlock)
	rec := inlineRecord()
	var originHits int
	w.serveTLS("svc.example", http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		originHits++
		fmt.Fprint(rw, "origin reached")
	}))

	// A raw tunnel lets the test issue two requests over one CONNECT.
	conn, err := net.Dial("tcp", w.proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "CONNECT svc.example:443 HTTP/1.1\r\nHost: svc.example:443\r\n\r\n")
	br := bufio.NewReader(conn)
	if line, err := br.ReadString('\n'); err != nil || !strings.Contains(line, "200") {
		t.Fatalf("CONNECT: %q %v", line, err)
	}
	if _, err := br.ReadString('\n'); err != nil { // blank line
		t.Fatal(err)
	}
	tlsConn := tls.Client(conn, &tls.Config{RootCAs: w.proxyCA.Pool(), ServerName: "svc.example"})
	if err := tlsConn.Handshake(); err != nil {
		t.Fatal(err)
	}
	tbr := bufio.NewReader(tlsConn)

	// Request 1: carries the email in the body — blocked.
	body := "email=" + rec.Email + "&z=" + rec.ZIP
	fmt.Fprintf(tlsConn, "POST /login HTTP/1.1\r\nHost: svc.example\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	resp, err := http.ReadResponse(tbr, nil)
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
	golden(t, "block_403.txt", page)
	if originHits != 0 {
		t.Fatalf("blocked request reached the origin %d times", originHits)
	}

	// Request 2 on the same tunnel: clean, forwarded.
	fmt.Fprintf(tlsConn, "GET /ok HTTP/1.1\r\nHost: svc.example\r\n\r\n")
	resp2, err := http.ReadResponse(tbr, nil)
	if err != nil {
		t.Fatalf("tunnel did not survive the block: %v", err)
	}
	ok, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 || string(ok) != "origin reached" {
		t.Fatalf("second request: %d %q", resp2.StatusCode, ok)
	}

	// Provenance: the blocked flow records the original content, the match
	// evidence (body hits with absolute stream offsets), and the verdict.
	flows := w.sink.Flows()
	if len(flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(flows))
	}
	f := flows[0]
	if f.Status != http.StatusForbidden || f.Inline == nil || f.Inline.Action != "block" || !f.Inline.Mitigated {
		t.Fatalf("blocked flow = status %d, inline %+v", f.Status, f.Inline)
	}
	if !strings.Contains(f.RequestBody, rec.Email) {
		t.Errorf("blocked flow lost its captured content: %q", f.RequestBody)
	}
	var offsetEvidence bool
	for _, e := range f.Inline.Evidence {
		if strings.Contains(e, "in body @") {
			offsetEvidence = true
		}
	}
	if !offsetEvidence {
		t.Errorf("no body evidence with stream offsets: %v", f.Inline.Evidence)
	}
	evs := inlineVerdictEvents(tracer)
	if len(evs) != 1 || evs[0].Attrs["action"] != "block" || evs[0].Attrs["evidence"] == "" {
		t.Errorf("verdict events = %+v", evs)
	}
	if got := reg.CounterVec("proxy.inline.verdicts", "action").WithLabelValues("block").Value(); got != 1 {
		t.Errorf("proxy.inline.verdicts.block = %d, want 1", got)
	}
	if got := reg.Counter("proxy.inline.flows_total").Value(); got != 2 {
		t.Errorf("proxy.inline.flows_total = %d, want 2", got)
	}
}

// TestInlineLogObservesOnly: the log action annotates the flow and emits
// the verdict but forwards the content untouched.
func TestInlineLogObservesOnly(t *testing.T) {
	w, _, tracer, _ := newInlineWorld(t, InlineLog)
	w.serveTLS("svc.example", echoHandler())
	rec := inlineRecord()
	resp, err := w.client().Post("https://svc.example/p", "text/plain",
		strings.NewReader("email="+rec.Email))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	echoed, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(echoed), rec.Email) {
		t.Errorf("log action modified content: %q", echoed)
	}
	f := w.sink.Flows()[0]
	if f.Inline == nil || f.Inline.Action != "log" || f.Inline.Mitigated || f.Rewritten {
		t.Errorf("flow = inline %+v rewritten %v", f.Inline, f.Rewritten)
	}
	if len(inlineVerdictEvents(tracer)) != 1 {
		t.Error("no verdict event")
	}
}

// TestInlineCleanFlowUnannotated: flows without ground-truth PII pass
// through with no verdict, no trace event, and no rewrite.
func TestInlineCleanFlowUnannotated(t *testing.T) {
	w, _, tracer, _ := newInlineWorld(t, InlineBlock)
	w.serveTLS("svc.example", echoHandler())
	resp, err := w.client().Post("https://svc.example/p", "text/plain",
		strings.NewReader("nothing sensitive here"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("clean flow blocked: %d", resp.StatusCode)
	}
	f := w.sink.Flows()[0]
	if f.Inline != nil || f.Rewritten {
		t.Errorf("clean flow annotated: %+v", f.Inline)
	}
	if n := len(inlineVerdictEvents(tracer)); n != 0 {
		t.Errorf("verdict events on clean flow: %d", n)
	}
}

// TestInlineConcurrentRedact drives many tunneled flows through one
// gateway at once — the shared-automaton, pooled-scanner path the race
// detector must bless (wired into make race).
func TestInlineConcurrentRedact(t *testing.T) {
	w, gw, _, _ := newInlineWorld(t, InlineRedact)
	w.serveTLS("conc.example", echoHandler())
	rec := inlineRecord()
	client := w.client()
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf("i=%d&email=%s&imei=%s", i, rec.Email, pii.Encode(pii.EncHex, rec.IMEI))
			resp, err := client.Post(fmt.Sprintf("https://conc.example/r/%d", i), "text/plain", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			echoed, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Contains(string(echoed), rec.Email) {
				errs <- fmt.Errorf("request %d: PII crossed the gateway: %q", i, echoed)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := w.sink.Len(); got != n {
		t.Errorf("flows = %d, want %d", got, n)
	}
	for _, f := range w.sink.Flows() {
		if f.Inline == nil || !f.Inline.Mitigated {
			t.Fatalf("unmitigated concurrent flow: %+v", f.Inline)
		}
	}
	if gets, puts := gw.PoolStats(); gets != puts || gets < n {
		t.Errorf("scanner pool: gets=%d puts=%d", gets, puts)
	}
}

// TestInlineClientDisconnectReleasesScanner: a client that dies mid-body
// must not leak its checked-out stream scanner or its goroutine. The
// deferred release runs when the body read fails, so the pool settles to
// gets == puts.
func TestInlineClientDisconnectReleasesScanner(t *testing.T) {
	w, gw, _, _ := newInlineWorld(t, InlineRedact)
	w.serveTLS("svc.example", echoHandler())
	rec := inlineRecord()

	before := runtime.NumGoroutine()
	const drops = 8
	for i := 0; i < drops; i++ {
		conn, err := net.Dial("tcp", w.proxy.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "CONNECT svc.example:443 HTTP/1.1\r\nHost: svc.example:443\r\n\r\n")
		br := bufio.NewReader(conn)
		if line, err := br.ReadString('\n'); err != nil || !strings.Contains(line, "200") {
			t.Fatalf("CONNECT: %q %v", line, err)
		}
		br.ReadString('\n') //nolint:errcheck
		tlsConn := tls.Client(conn, &tls.Config{RootCAs: w.proxyCA.Pool(), ServerName: "svc.example"})
		if err := tlsConn.Handshake(); err != nil {
			t.Fatal(err)
		}
		// Promise a large body, deliver a fragment (ending mid-needle),
		// then vanish.
		partial := "email=" + rec.Email[:10]
		fmt.Fprintf(tlsConn, "POST /drop HTTP/1.1\r\nHost: svc.example\r\nContent-Length: 1048576\r\n\r\n%s", partial)
		tlsConn.Close()
		conn.Close()
	}

	// The proxy notices each disconnect on its next body read; poll until
	// every checkout has been returned.
	deadline := time.Now().Add(5 * time.Second)
	for {
		gets, puts := gw.PoolStats()
		if gets == puts && gets >= drops {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scanner pool did not settle: gets=%d puts=%d", gets, puts)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Goroutines settle back near the baseline (no per-drop leak).
	deadline = time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestParseInlineAction pins the flag grammar.
func TestParseInlineAction(t *testing.T) {
	for in, want := range map[string]InlineAction{
		"": InlineOff, "log": InlineLog, "REDACT": InlineRedact, " block ": InlineBlock,
	} {
		got, err := ParseInlineAction(in)
		if err != nil || got != want {
			t.Errorf("ParseInlineAction(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := ParseInlineAction("drop"); err == nil {
		t.Error("unknown action accepted")
	}
}

// TestNewInlineDisabled: nil record or the off action yield a nil gateway,
// and a nil gateway's methods are safe no-ops (the proxy calls them
// unguarded).
func TestNewInlineDisabled(t *testing.T) {
	if NewInline(nil, InlineBlock, nil) != nil {
		t.Error("nil record produced a gateway")
	}
	if NewInline(inlineRecord(), InlineOff, nil) != nil {
		t.Error("off action produced a gateway")
	}
	var g *Inline
	if g.Action() != InlineOff {
		t.Error("nil gateway action")
	}
	insp := g.begin()
	rc := insp.tee(io.NopCloser(strings.NewReader("x")))
	if rc == nil {
		t.Fatal("nil inspection dropped the body")
	}
	iv, u, b := insp.finish("https://x/", nil, []byte("y"))
	if iv != nil || u != "https://x/" || string(b) != "y" {
		t.Error("nil inspection modified the flow")
	}
	insp.release()
}
