package proxy

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"appvsweb/internal/capture"
	"appvsweb/internal/obs"
)

// TestHandshakeTimeoutCountsTunnelFailure: a client that opens a CONNECT
// tunnel and then stalls without starting the TLS handshake must not pin
// the tunnel goroutine — the handshake deadline fires and the stall is
// counted as a tunnel failure.
func TestHandshakeTimeoutCountsTunnelFailure(t *testing.T) {
	reg := obs.New()
	proxyCA, err := NewCA("Meddle Interception CA")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		CA: proxyCA, Resolver: NewMapResolver(), Sink: capture.NewMemSink(),
		Metrics:          reg,
		HandshakeTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	raw, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	fmt.Fprintf(raw, "CONNECT stall.example:443 HTTP/1.1\r\nHost: stall.example:443\r\n\r\n")
	resp, err := http.ReadResponse(bufio.NewReader(raw), nil)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("CONNECT failed: %v %v", err, resp)
	}
	// Stall: never send the ClientHello. The proxy's deadline must cut
	// the tunnel down on its own.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Counters["proxy.tunnel_failures_total"] >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("stalled handshake never counted: counters = %v", reg.Snapshot().Counters)
}
