// Package obs is the campaign observability layer: lock-free counters and
// gauges, fixed log-bucket streaming histograms with quantile estimation,
// span timers for stage timing, and a process-wide Registry that snapshots
// everything as JSON (served at /debug/metrics by the cmd binaries).
//
// The instrumented hot paths — internal/proxy (flows, bytes, TLS-intercept
// failures), internal/pii (match attempts and per-encoding hits),
// internal/recon (training/evaluation durations), and internal/core
// (per-experiment and per-stage spans) — all record into the Default
// registry unless a caller injects its own, so one snapshot describes a
// whole campaign regardless of how many proxies and sessions it spawned.
//
// All write paths are wait-free after the first lookup: a Counter or Gauge
// is a single atomic integer, and a Histogram is a fixed array of atomic
// bucket counts (log-linear buckets, 32 sub-buckets per octave, worst-case
// relative error under 2%). Callers on hot paths should resolve the metric
// pointer once and reuse it; Registry lookups take a read lock only.
//
// Two clocks coexist in this codebase: sessions run on the virtual clock
// (internal/vclock), which makes four-minute sessions complete in
// milliseconds, while obs spans always measure real wall time — they
// answer "where does the hardware spend its time", not "what does the
// simulated timeline say". Metric names, units, and the export format are
// documented in docs/metrics.md.
package obs
