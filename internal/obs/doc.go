// Package obs is the campaign observability layer: lock-free counters and
// gauges, fixed log-bucket streaming histograms with quantile estimation,
// span timers for stage timing, labeled metric families, and a
// process-wide Registry with three export surfaces — the legacy JSON
// snapshot at /debug/metrics, Prometheus/OpenMetrics text exposition
// (?format=prom / ?format=openmetrics, metadata from the in-code catalog
// in desc.go), and the windowed time-series view at /debug/metrics/series
// backed by a self-scraping Recorder.
//
// Metrics that vary along a dimension are vec families (CounterVec,
// GaugeVec, HistogramVec): a fixed ordered label set, one series per
// label tuple, per-family cardinality bounded by collapsing overflow
// tuples into a shared "other" series. In the JSON snapshot each series
// folds to the legacy flat dotted name (pii.match.hits.md5,
// stage.session_ns), so the wire format predates and survives the
// dimensional layer; the text exposition renders real label pairs.
//
// The instrumented hot paths — internal/proxy (flows, bytes, TLS-intercept
// failures), internal/pii (match attempts and per-encoding hits),
// internal/recon (training/evaluation durations), and internal/core
// (per-experiment and per-stage spans) — all record into the Default
// registry unless a caller injects its own, so one snapshot describes a
// whole campaign regardless of how many proxies and sessions it spawned.
//
// All write paths are wait-free after the first lookup: a Counter or Gauge
// is a single atomic integer, and a Histogram is a fixed array of atomic
// bucket counts (log-linear buckets, 32 sub-buckets per octave, worst-case
// relative error under 2%). Callers on hot paths should resolve the metric
// pointer once — for vec families, resolve the series with
// WithLabelValues once — and reuse it; Registry lookups take a read lock
// only.
//
// A Recorder (one per process, attached by the cmd binaries) snapshots
// the registry on a ticker into a bounded ring, samples the Go runtime
// into runtime.* gauges, serves per-window rates ("what is the leak rate
// right now"), and evaluates Watch threshold rules — counter rate, gauge
// level, or histogram quantile against a bound — logging one structured
// warning per trip transition. cmd/avwtop is the terminal client for all
// of this.
//
// Two clocks coexist in this codebase: sessions run on the virtual clock
// (internal/vclock), which makes four-minute sessions complete in
// milliseconds, while obs spans always measure real wall time — they
// answer "where does the hardware spend its time", not "what does the
// simulated timeline say". Metric names, units, and the export formats are
// documented in docs/metrics.md.
package obs
