package obs_test

import (
	"fmt"
	"time"

	"appvsweb/internal/obs"
)

// Example instruments a fake pipeline stage: a counter for events, a span
// timer feeding a latency histogram, and a JSON-exportable snapshot.
func Example() {
	reg := obs.New()

	flows := reg.Counter("demo.flows_total")
	latency := reg.Histogram("demo.stage_ns", "ns")

	for i := 0; i < 100; i++ {
		sp := latency.Span() // in real code: one span per stage execution
		flows.Inc()
		_ = sp.End()
	}
	// Deterministic observations for the example's output:
	sizes := reg.Histogram("demo.flow_bytes", "bytes")
	for v := int64(1); v <= 1000; v++ {
		sizes.Observe(v)
	}

	snap := reg.Snapshot()
	fmt.Println("flows:", snap.Counters["demo.flows_total"])
	fmt.Println("p50 bytes:", snap.Histograms["demo.flow_bytes"].P50)
	fmt.Println("timed stages:", snap.Histograms["demo.stage_ns"].Count)
	// Output:
	// flows: 100
	// p50 bytes: 500
	// timed stages: 100
}

// ExampleHistogram_Span shows the span-timer idiom used on the hot paths.
func ExampleHistogram_Span() {
	h := obs.New().Histogram("stage.session_ns", "ns")
	sp := h.Span()
	time.Sleep(time.Microsecond)
	sp.End()
	fmt.Println(h.Count())
	// Output: 1
}
