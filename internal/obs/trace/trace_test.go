package trace

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Type: EvFlowCaptured})
	tr.Stage("s1", "detect")()
	if tr.Enabled() || tr.TraceID() != "" || tr.NewSpanID() != "" {
		t.Error("nil tracer should be inert")
	}
	if tr.Events() != nil || tr.Total() != 0 || tr.Flush() != nil {
		t.Error("nil tracer should report nothing")
	}
}

func TestEmitStampsTimeAndTrace(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr := New(Options{Now: func() time.Time { return now }})
	tr.Emit(Event{Type: EvCampaignStart})
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events", len(ev))
	}
	if !ev[0].Time.Equal(now) {
		t.Errorf("time not stamped: %v", ev[0].Time)
	}
	if ev[0].Trace != tr.TraceID() || ev[0].Trace == "" {
		t.Errorf("trace not stamped: %q vs %q", ev[0].Trace, tr.TraceID())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New(Options{Capacity: 4})
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Type: EvStage, DurNS: int64(i)})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d, want 4", len(ev))
	}
	for i, e := range ev {
		if e.DurNS != int64(6+i) {
			t.Errorf("event %d: DurNS %d, want %d (oldest-first order)", i, e.DurNS, 6+i)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("total %d, want 10", tr.Total())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{W: &buf, Capacity: 2})
	for i := int64(1); i <= 5; i++ {
		tr.Emit(Event{Type: EvFlowCaptured, Flow: i, Attrs: map[string]string{"host": "a.example"}})
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// The stream is append-only: ring eviction must not lose written events.
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("stream has %d events, want 5", len(got))
	}
	if got[4].Flow != 5 || got[4].Attrs["host"] != "a.example" {
		t.Errorf("round-trip mismatch: %+v", got[4])
	}
}

func TestReadEventsBadInput(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{\"t\":\"2020")); err == nil {
		t.Error("want decode error")
	}
}

// TestConcurrentEmit hammers one tracer from many goroutines; run under
// -race this verifies the buffer and stream locking.
func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Capacity: 128, W: &buf})
	const workers, per = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			span := tr.NewSpanID()
			for i := 0; i < per; i++ {
				end := tr.Stage(span, "detect")
				tr.Emit(Event{Type: EvFlowCaptured, Span: span, Flow: int64(w*per + i + 1)})
				end()
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Total() != workers*per*2 {
		t.Errorf("total %d, want %d", tr.Total(), workers*per*2)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != workers*per*2 {
		t.Errorf("stream has %d events, want %d", len(got), workers*per*2)
	}
}

func TestSpanIDsUnique(t *testing.T) {
	tr := New(Options{})
	seen := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := tr.NewSpanID()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate span id %q", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestStageEmitsDuration(t *testing.T) {
	now := time.Unix(0, 0)
	tr := New(Options{Now: func() time.Time { return now }})
	end := tr.Stage("s1", "filter")
	now = now.Add(42 * time.Millisecond)
	end()
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Type != EvStage {
		t.Fatalf("events: %+v", ev)
	}
	if ev[0].Attrs["stage"] != "filter" || ev[0].DurNS != (42*time.Millisecond).Nanoseconds() {
		t.Errorf("stage event: %+v", ev[0])
	}
}

func TestSummaryAndSlowReport(t *testing.T) {
	tr := New(Options{})
	span := tr.NewSpanID()
	tr.Emit(Event{Type: EvExperimentStart, Span: span, Attrs: map[string]string{
		"service": "weathernow", "os": "android", "medium": "app"}})
	tr.Emit(Event{Type: EvStage, Span: span, DurNS: 1e6, Attrs: map[string]string{"stage": "session"}})
	tr.Emit(Event{Type: EvFlowCaptured, Span: span, Flow: 1})
	tr.Emit(Event{Type: EvFlowPolicy, Span: span, Flow: 1, Attrs: map[string]string{"verdict": "leak"}})
	tr.Emit(Event{Type: EvExperimentEnd, Span: span, DurNS: 2e6, Attrs: map[string]string{
		"flows": "1", "leaks": "1"}})

	sum := Summary(tr.Events())
	for _, want := range []string{"experiments: 1", "1 leak / 0 clean", EvFlowPolicy} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	slow := SlowReport(tr.Events(), 5)
	for _, want := range []string{"weathernow android/app", "session", "flows=1 leaks=1"} {
		if !strings.Contains(slow, want) {
			t.Errorf("slow report missing %q:\n%s", want, slow)
		}
	}
	if got := SlowReport(nil, 0); !strings.Contains(got, "no experiment spans") {
		t.Errorf("empty slow report: %q", got)
	}
}

func TestTimelineHTML(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr := New(Options{Now: func() time.Time { return now }})
	for i, svc := range []string{"weathernow", "grubexpress"} {
		span := tr.NewSpanID()
		tr.Emit(Event{Type: EvExperimentStart, Span: span, Time: now.Add(time.Duration(i) * time.Second),
			Attrs: map[string]string{"service": svc, "os": "ios", "medium": "web"}})
		tr.Emit(Event{Type: EvStage, Span: span, DurNS: 5e6, Attrs: map[string]string{"stage": "detect"}})
		leaks := fmt.Sprint(i)
		tr.Emit(Event{Type: EvExperimentEnd, Span: span, DurNS: 1e9, Attrs: map[string]string{
			"flows": "3", "leaks": leaks}})
	}
	html := TimelineHTML(tr.Events())
	for _, want := range []string{"<!DOCTYPE html>", "weathernow ios/web", `class="bar clean"`, `class="bar leak"`, "detect: 5ms"} {
		if !strings.Contains(html, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
}

func TestFlowIDsAndVerdicts(t *testing.T) {
	events := []Event{
		{Type: EvFlowCaptured, Flow: 3},
		{Type: EvFlowPolicy, Flow: 3, Attrs: map[string]string{"verdict": "clean"}},
		{Type: EvFlowCaptured, Flow: 1},
		{Type: EvFlowPolicy, Flow: 1, Attrs: map[string]string{"verdict": "leak"}},
	}
	ids := FlowIDs(events)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Errorf("flow ids: %v", ids)
	}
	v := Verdicts(events)
	if v[1] != "leak" || v[3] != "clean" {
		t.Errorf("verdicts: %v", v)
	}
}
