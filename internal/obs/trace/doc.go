// Package trace is the causal, per-flow observability layer beneath the
// aggregate metrics of internal/obs: a lightweight span/event tracer whose
// trace IDs propagate campaign → experiment → session → flow → verdict.
//
// Every significant pipeline step emits one Event — the capture of a flow,
// the background-filtering decision, the PII match (value class, wire
// encoding, flow section), the domain categorization (including the
// EasyList rule that fired), and the leak-policy verdict with the clause
// that decided it. Events are held in a fixed-capacity in-memory ring and,
// when a writer is attached (avwrun -trace out.jsonl), streamed append-only
// as JSONL.
//
// The reader half of the package turns a recorded event stream back into
// answers: Explain reconstructs the full causal chain behind one flow's
// verdict, SlowReport breaks a campaign's wall-clock down by pipeline
// stage, TimelineHTML renders a self-contained timeline view, and Summary
// gives the at-a-glance totals. Command avwtrace is the CLI over these.
//
// A nil *Tracer is valid and silently discards everything, so
// instrumentation sites never need to guard their emit calls.
package trace
