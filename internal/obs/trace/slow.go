package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// expRecord aggregates one experiment span for the slow/summary reports.
type expRecord struct {
	span     string
	label    string
	dur      time.Duration
	stages   map[string]time.Duration
	flows    string
	leaks    string
	excluded bool
}

func collectExperiments(events []Event) []*expRecord {
	bySpan := make(map[string]*expRecord)
	var order []*expRecord
	get := func(span string) *expRecord {
		r := bySpan[span]
		if r == nil {
			r = &expRecord{span: span, stages: make(map[string]time.Duration)}
			bySpan[span] = r
			order = append(order, r)
		}
		return r
	}
	for _, e := range events {
		switch e.Type {
		case EvExperimentStart:
			r := get(e.Span)
			r.label = fmt.Sprintf("%s %s/%s", e.Attrs["service"], e.Attrs["os"], e.Attrs["medium"])
		case EvExperimentEnd:
			r := get(e.Span)
			r.dur = time.Duration(e.DurNS)
			r.flows = e.Attrs["flows"]
			r.leaks = e.Attrs["leaks"]
			r.excluded = e.Attrs["excluded"] == "true"
		case EvStage:
			r := get(e.Span)
			r.stages[e.Attrs["stage"]] += time.Duration(e.DurNS)
		}
	}
	return order
}

// SlowReport breaks the campaign's wall-clock down by pipeline stage and
// lists the top slowest experiments with their per-stage critical path.
func SlowReport(events []Event, top int) string {
	if top <= 0 {
		top = 10
	}
	exps := collectExperiments(events)
	if len(exps) == 0 {
		return "no experiment spans in trace\n"
	}

	stageTotals := make(map[string]time.Duration)
	stageCounts := make(map[string]int)
	var grand time.Duration
	for _, r := range exps {
		grand += r.dur
		for s, d := range r.stages {
			stageTotals[s] += d
			stageCounts[s]++
		}
	}
	stages := make([]string, 0, len(stageTotals))
	for s := range stageTotals {
		stages = append(stages, s)
	}
	sort.Slice(stages, func(i, j int) bool { return stageTotals[stages[i]] > stageTotals[stages[j]] })

	var b strings.Builder
	fmt.Fprintf(&b, "%d experiments, %v total experiment wall-clock\n\n", len(exps), grand.Round(time.Millisecond))
	b.WriteString("stage totals (critical-path share):\n")
	for _, s := range stages {
		share := 0.0
		if grand > 0 {
			share = 100 * float64(stageTotals[s]) / float64(grand)
		}
		fmt.Fprintf(&b, "  %-12s %10v  across %3d experiments  (%5.1f%%)\n",
			s, stageTotals[s].Round(time.Microsecond), stageCounts[s], share)
	}

	sorted := append([]*expRecord(nil), exps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].dur > sorted[j].dur })
	if top > len(sorted) {
		top = len(sorted)
	}
	fmt.Fprintf(&b, "\nslowest %d experiments:\n", top)
	for _, r := range sorted[:top] {
		fmt.Fprintf(&b, "  %-28s %10v", r.label, r.dur.Round(time.Microsecond))
		if r.excluded {
			b.WriteString("  excluded")
		} else if r.flows != "" {
			fmt.Fprintf(&b, "  flows=%s leaks=%s", r.flows, r.leaks)
		}
		var parts []string
		for _, s := range stages {
			if d, ok := r.stages[s]; ok {
				parts = append(parts, fmt.Sprintf("%s=%v", s, d.Round(time.Microsecond)))
			}
		}
		if len(parts) > 0 {
			b.WriteString("  [" + strings.Join(parts, " ") + "]")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Summary gives the at-a-glance totals of a trace: spans, flows, verdicts,
// and the event-type histogram.
func Summary(events []Event) string {
	var b strings.Builder
	byType := make(map[string]int)
	trace := ""
	for _, e := range events {
		byType[e.Type]++
		if trace == "" && e.Trace != "" {
			trace = e.Trace
		}
	}
	leaks, clean := 0, 0
	for _, v := range Verdicts(events) {
		if v == "leak" {
			leaks++
		} else {
			clean++
		}
	}
	fmt.Fprintf(&b, "trace %s: %d events\n", trace, len(events))
	fmt.Fprintf(&b, "  experiments: %d (%d excluded)\n", byType[EvExperimentStart], countExcluded(events))
	fmt.Fprintf(&b, "  flows captured: %d, verdicts: %d leak / %d clean\n", byType[EvFlowCaptured], leaks, clean)
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Strings(types)
	b.WriteString("  events by type:\n")
	for _, t := range types {
		fmt.Fprintf(&b, "    %-22s %d\n", t, byType[t])
	}
	return b.String()
}

func countExcluded(events []Event) int {
	n := 0
	for _, e := range events {
		if e.Type == EvExperimentEnd && e.Attrs["excluded"] == "true" {
			n++
		}
	}
	return n
}
