package trace

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event types, in pipeline order. The flow.* events carry the per-flow
// causal chain; the remaining types delimit the enclosing spans.
const (
	EvCampaignStart = "campaign.start"
	EvCampaignEnd   = "campaign.end"
	// EvCampaignResume marks a campaign continuing from a crash-safe
	// journal: attrs carry how many experiments were replayed from it.
	EvCampaignResume  = "campaign.resume"
	EvExperimentStart = "experiment.start"
	EvExperimentEnd   = "experiment.end"
	// EvExperimentRetry records one transient failure about to be retried
	// (attrs: stage, attempt, error, backoff); EvExperimentSkip records an
	// experiment the failure policy dropped after its retry budget.
	EvExperimentRetry = "experiment.retry"
	EvExperimentSkip  = "experiment.skip"
	EvSessionStart    = "session.start"
	EvSessionEnd      = "session.end"
	// EvStage records one timed pipeline stage (attrs["stage"] names it,
	// DurNS carries the wall-clock cost) within an experiment span.
	EvStage = "stage"

	EvFlowCaptured   = "flow.captured"
	EvFlowFilter     = "flow.filter"
	EvFlowCategorize = "flow.categorize"
	EvFlowPII        = "flow.pii"
	EvFlowPolicy     = "flow.policy"

	// EvTunnelFailure marks a CONNECT tunnel that died before carrying a
	// request — the certificate-pinning signature that excludes an
	// experiment.
	EvTunnelFailure = "proxy.tunnel_failure"

	// EvTunnelIdle marks an established tunnel reaped by the proxy's idle
	// read deadline (Config.IdleTimeout): interception worked, the client
	// just went silent. Attrs carry the host, requests served, and the
	// configured idle window. Counted apart from tunnel failures.
	EvTunnelIdle = "proxy.tunnel_idle"

	// EvInlineVerdict records one inline-gateway verdict emitted live on
	// the proxy hot path (docs/inline.md): attrs carry the destination
	// host, the mitigation action (log/redact/block), the PII classes,
	// and the match evidence with absolute stream offsets.
	EvInlineVerdict = "proxy.inline_verdict"

	// EvArtifactCompute records one artifact cache miss in the analysis
	// engine: attrs carry the artifact ID, view fingerprint prefix, and
	// output size; DurNS the compute cost. Cache hits emit nothing.
	EvArtifactCompute = "artifact.compute"

	// Sharded-campaign coordinator events (docs/distributed.md): a worker
	// launch (attrs: shard, attempt, experiments), a heartbeat lease
	// expiring on a stalled worker, a shard being reassigned after its
	// worker died or stalled, and the final deterministic journal merge.
	EvShardLaunch       = "shard.launch"
	EvShardLeaseExpired = "shard.lease_expired"
	EvShardReassign     = "shard.reassign"
	EvShardMerge        = "shard.merge"
)

// Event is one trace record. The JSON field names are the wire schema of
// the -trace JSONL stream (docs/tracing.md).
type Event struct {
	Time time.Time `json:"t"`
	Type string    `json:"type"`
	// Trace is the campaign-level trace ID every event of one run shares.
	Trace string `json:"trace,omitempty"`
	// Span scopes the event to one experiment (or session); Parent links a
	// child span to the span that opened it.
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Flow is the campaign-unique flow ID for flow.* events.
	Flow int64 `json:"flow,omitempty"`
	// DurNS carries a duration for .end and stage events.
	DurNS int64 `json:"dur_ns,omitempty"`
	// Attrs hold the event-type-specific fields.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Options configure a Tracer.
type Options struct {
	// Capacity bounds the in-memory ring. Default 65536 events.
	Capacity int
	// W, when set, receives every event as one JSON document per line,
	// append-only, regardless of ring eviction.
	W io.Writer
	// Now supplies event timestamps; defaults to time.Now.
	Now func() time.Time
}

// Tracer collects events. All methods are safe for concurrent use and
// valid on a nil receiver (no-ops), so emit sites need no guards.
type Tracer struct {
	traceID string
	now     func() time.Time

	mu      sync.Mutex
	ring    []Event
	start   int // index of oldest event
	count   int // events currently in the ring
	total   int64
	spanSeq int64
	bw      *bufio.Writer
	enc     *json.Encoder
	werr    error
}

// New builds a tracer with a fresh trace ID.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = 65536
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	t := &Tracer{
		traceID: newTraceID(),
		now:     opts.Now,
		ring:    make([]Event, opts.Capacity),
	}
	if opts.W != nil {
		t.bw = bufio.NewWriter(opts.W)
		t.enc = json.NewEncoder(t.bw)
	}
	return t
}

// newTraceID returns 8 random hex bytes, e.g. "9f1c04aa".
func newTraceID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// TraceID returns the campaign-level trace identifier ("" on nil).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// NewSpanID allocates the next span identifier ("s1", "s2", ...).
func (t *Tracer) NewSpanID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	t.spanSeq++
	n := t.spanSeq
	t.mu.Unlock()
	return fmt.Sprintf("s%d", n)
}

// Emit records one event, stamping Time and Trace when unset.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = t.now()
	}
	if e.Trace == "" {
		e.Trace = t.traceID
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if t.count < len(t.ring) {
		t.ring[(t.start+t.count)%len(t.ring)] = e
		t.count++
	} else {
		t.ring[t.start] = e
		t.start = (t.start + 1) % len(t.ring)
	}
	if t.enc != nil && t.werr == nil {
		t.werr = t.enc.Encode(e)
	}
}

// Stage returns a closure that, when called, emits one EvStage event for
// the named pipeline stage with the elapsed wall-clock duration.
func (t *Tracer) Stage(span, stage string) func() {
	if t == nil {
		return func() {}
	}
	start := t.now()
	return func() {
		t.Emit(Event{
			Type:  EvStage,
			Span:  span,
			DurNS: t.now().Sub(start).Nanoseconds(),
			Attrs: map[string]string{"stage": stage},
		})
	}
}

// Events returns the ring contents in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.ring[(t.start+i)%len(t.ring)]
	}
	return out
}

// Total reports how many events were emitted over the tracer's lifetime,
// including any the ring has since evicted.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Flush drains the stream writer's buffer and returns the first write
// error, if any.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw != nil && t.werr == nil {
		t.werr = t.bw.Flush()
	}
	return t.werr
}

// ReadEvents decodes a JSONL event stream written by a Tracer.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decode event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}
