package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Explain reconstructs the causal chain behind one flow's verdict from a
// recorded event stream: which capture produced the flow, what the
// background filter decided, which PII matched under which encoding, how
// the destination was categorized (and which EasyList rule fired), and the
// policy clause that decided leak or not-leak.
func Explain(events []Event, flowID int64) (string, error) {
	byType := make(map[string]Event)
	var span string
	for _, e := range events {
		if e.Flow != flowID {
			continue
		}
		if _, seen := byType[e.Type]; !seen {
			byType[e.Type] = e
		}
		if e.Span != "" {
			span = e.Span
		}
	}
	if len(byType) == 0 {
		return "", fmt.Errorf("trace: no events for flow %d", flowID)
	}

	var b strings.Builder
	cap, hasCap := byType[EvFlowCaptured]
	trace := cap.Trace
	if trace == "" {
		for _, e := range byType {
			trace = e.Trace
			break
		}
	}
	fmt.Fprintf(&b, "flow %d · trace %s", flowID, trace)
	if exp, ok := experimentFor(events, span); ok {
		fmt.Fprintf(&b, " · experiment %s %s/%s (span %s)",
			exp.Attrs["service"], exp.Attrs["os"], exp.Attrs["medium"], span)
	}
	b.WriteString("\n\n")

	if hasCap {
		transport := cap.Attrs["protocol"]
		if cap.Attrs["intercepted"] == "true" {
			transport += ", TLS-intercepted"
		} else if cap.Attrs["protocol"] == "https" {
			transport += ", not intercepted"
		} else {
			transport += ", plaintext"
		}
		fmt.Fprintf(&b, "  1. capture     %s %s\n", cap.Attrs["method"], cap.Attrs["url"])
		fmt.Fprintf(&b, "                 host %s [%s] at %s, session %q\n",
			cap.Attrs["host"], transport, cap.Attrs["start"], cap.Attrs["client"])
	} else {
		b.WriteString("  1. capture     (no capture event recorded)\n")
	}

	if f, ok := byType[EvFlowFilter]; ok {
		line := f.Attrs["decision"]
		if r := f.Attrs["reason"]; r != "" {
			line += " — " + r
		}
		fmt.Fprintf(&b, "  2. filter      %s\n", line)
		if f.Attrs["decision"] == "dropped" {
			b.WriteString("                 (flow removed before analysis; no verdict)\n")
			return b.String(), nil
		}
	}

	if c, ok := byType[EvFlowCategorize]; ok {
		fmt.Fprintf(&b, "  3. categorize  %s (eTLD+1 %s)", c.Attrs["category"], c.Attrs["domain"])
		if rule := c.Attrs["rule"]; rule != "" {
			fmt.Fprintf(&b, " — EasyList rule %q", rule)
		}
		b.WriteString("\n")
	}

	if p, ok := byType[EvFlowPII]; ok {
		if m := p.Attrs["matches"]; m != "" {
			fmt.Fprintf(&b, "  4. pii         %s\n", m)
		} else {
			b.WriteString("  4. pii         no ground-truth PII matched under any encoding\n")
		}
	}

	if v, ok := byType[EvFlowPolicy]; ok {
		verdict := strings.ToUpper(v.Attrs["verdict"])
		if types := v.Attrs["types"]; types != "" {
			verdict += " [" + types + "]"
		}
		fmt.Fprintf(&b, "  5. policy      %s — %s\n", verdict, v.Attrs["clause"])
	} else {
		b.WriteString("  5. policy      (no verdict recorded)\n")
	}
	return b.String(), nil
}

// experimentFor finds the experiment.start event owning a span.
func experimentFor(events []Event, span string) (Event, bool) {
	if span == "" {
		return Event{}, false
	}
	for _, e := range events {
		if e.Type == EvExperimentStart && e.Span == span {
			return e, true
		}
	}
	return Event{}, false
}

// FlowIDs lists every flow ID present in the stream, ascending.
func FlowIDs(events []Event) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, e := range events {
		if e.Flow != 0 && !seen[e.Flow] {
			seen[e.Flow] = true
			out = append(out, e.Flow)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Verdicts maps each flow ID to its recorded policy verdict ("leak" or
// "clean"); flows without a policy event are absent.
func Verdicts(events []Event) map[int64]string {
	out := make(map[int64]string)
	for _, e := range events {
		if e.Type == EvFlowPolicy && e.Flow != 0 {
			out[e.Flow] = e.Attrs["verdict"]
		}
	}
	return out
}
