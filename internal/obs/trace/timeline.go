package trace

import (
	"fmt"
	"html"
	"sort"
	"strings"
	"time"
)

// TimelineHTML renders the campaign as a self-contained HTML timeline: one
// row per experiment, bars positioned on the shared wall-clock axis,
// colored by outcome (leaking, clean, excluded), with the per-stage
// breakdown in each bar's tooltip. The output embeds all styling and needs
// no external assets.
func TimelineHTML(events []Event) string {
	type row struct {
		*expRecord
		start time.Time
		end   time.Time
	}
	starts := make(map[string]time.Time)
	for _, e := range events {
		if e.Type == EvExperimentStart {
			starts[e.Span] = e.Time
		}
	}
	var rows []row
	var min, max time.Time
	trace := ""
	for _, e := range events {
		if trace == "" && e.Trace != "" {
			trace = e.Trace
		}
	}
	for _, r := range collectExperiments(events) {
		st, ok := starts[r.span]
		if !ok {
			continue
		}
		en := st.Add(r.dur)
		rows = append(rows, row{expRecord: r, start: st, end: en})
		if min.IsZero() || st.Before(min) {
			min = st
		}
		if en.After(max) {
			max = en
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].start.Before(rows[j].start) })

	total := max.Sub(min)
	if total <= 0 {
		total = time.Millisecond
	}
	pct := func(t time.Time) float64 { return 100 * float64(t.Sub(min)) / float64(total) }

	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>appvsweb campaign timeline</title>
<style>
 body { font: 13px/1.5 system-ui, sans-serif; margin: 24px; color: #1a2733; }
 h1 { font-size: 18px; } .meta { color: #5b6b7a; margin-bottom: 16px; }
 .lane { display: flex; align-items: center; height: 20px; }
 .label { width: 240px; flex: none; white-space: nowrap; overflow: hidden;
          text-overflow: ellipsis; padding-right: 8px; color: #33414e; }
 .track { position: relative; flex: 1; height: 14px; background: #f0f3f6;
          border-radius: 3px; }
 .bar { position: absolute; top: 0; height: 14px; min-width: 2px;
        border-radius: 3px; opacity: .9; }
 .bar:hover { opacity: 1; outline: 1px solid #1a2733; }
 .leak { background: #c0392b; } .clean { background: #3e8e5a; }
 .excluded { background: #9aa7b3; }
 .axis { display: flex; justify-content: space-between; margin-left: 240px;
         color: #5b6b7a; font-size: 11px; padding-top: 6px; }
 .legend span { display: inline-block; margin-right: 16px; }
 .swatch { display: inline-block; width: 10px; height: 10px; border-radius: 2px;
           margin-right: 4px; vertical-align: baseline; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>Campaign timeline</h1>\n<div class=\"meta\">trace %s · %d experiments · %v wall-clock span</div>\n",
		html.EscapeString(trace), len(rows), total.Round(time.Millisecond))
	b.WriteString(`<div class="legend"><span><span class="swatch leak"></span>leaking</span>` +
		`<span><span class="swatch clean"></span>clean</span>` +
		`<span><span class="swatch excluded"></span>excluded (pinning)</span></div><br>` + "\n")

	for _, r := range rows {
		class := "clean"
		switch {
		case r.excluded:
			class = "excluded"
		case r.leaks != "" && r.leaks != "0":
			class = "leak"
		}
		tip := fmt.Sprintf("%s — %v", r.label, r.dur.Round(time.Microsecond))
		if !r.excluded {
			tip += fmt.Sprintf(" (flows %s, leaks %s)", r.flows, r.leaks)
		}
		var stageNames []string
		for s := range r.stages {
			stageNames = append(stageNames, s)
		}
		sort.Strings(stageNames)
		for _, s := range stageNames {
			tip += fmt.Sprintf("\n%s: %v", s, r.stages[s].Round(time.Microsecond))
		}
		left := pct(r.start)
		width := pct(r.end) - left
		fmt.Fprintf(&b, `<div class="lane"><div class="label">%s</div><div class="track">`+
			`<div class="bar %s" style="left:%.2f%%;width:%.2f%%" title="%s"></div></div></div>`+"\n",
			html.EscapeString(r.label), class, left, width, html.EscapeString(tip))
	}
	fmt.Fprintf(&b, `<div class="axis"><span>%s</span><span>+%v</span></div>`+"\n",
		min.Format("15:04:05.000"), total.Round(time.Millisecond))
	b.WriteString("</body></html>\n")
	return b.String()
}
