package trace

import (
	"io"
	"testing"
	"time"
)

func benchEvent(i int64) Event {
	return Event{
		Type: EvFlowPolicy, Span: "s1", Flow: i,
		Attrs: map[string]string{"verdict": "leak", "types": "E,L", "clause": "plaintext HTTP"},
	}
}

// BenchmarkEmitRing measures ring-only emission — the cost every
// instrumented site pays when tracing is on without a stream writer.
func BenchmarkEmitRing(b *testing.B) {
	tr := New(Options{Capacity: 1024})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(benchEvent(int64(i)))
	}
}

// BenchmarkEmitStream adds the JSONL encoder on top of the ring.
func BenchmarkEmitStream(b *testing.B) {
	tr := New(Options{Capacity: 1024, W: io.Discard})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(benchEvent(int64(i)))
	}
}

// BenchmarkEmitNil measures the disabled path: a nil tracer at every emit
// site, which must stay near-free for untraced runs.
func BenchmarkEmitNil(b *testing.B) {
	var tr *Tracer
	ev := benchEvent(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}

// BenchmarkStage measures the timed-stage helper pair (open + close).
func BenchmarkStage(b *testing.B) {
	now := time.Unix(0, 0)
	tr := New(Options{Capacity: 1024, Now: func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Stage("s1", "session")()
	}
}
