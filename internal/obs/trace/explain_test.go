package trace

import (
	"strings"
	"testing"
)

// fixtureTrace is a hand-written miniature of an avwrun -trace stream: one
// experiment with a leaking plaintext A&A flow (42), a clean first-party
// credential flow (43), and a background flow dropped by the filter (44).
const fixtureTrace = `{"t":"2026-08-06T12:00:00Z","type":"experiment.start","trace":"deadbeef","span":"s1","attrs":{"service":"weathernow","os":"android","medium":"app"}}
{"t":"2026-08-06T12:00:01Z","type":"flow.captured","trace":"deadbeef","span":"s1","flow":42,"attrs":{"host":"ads.tracker-sim.example","method":"GET","url":"http://ads.tracker-sim.example/pixel?adid=123","protocol":"http","client":"weathernow/android/app","intercepted":"false","start":"2016-04-01T09:00:12Z"}}
{"t":"2026-08-06T12:00:01Z","type":"flow.filter","trace":"deadbeef","span":"s1","flow":42,"attrs":{"decision":"kept","reason":"host not in the background set"}}
{"t":"2026-08-06T12:00:01Z","type":"flow.categorize","trace":"deadbeef","span":"s1","flow":42,"attrs":{"category":"a&a","domain":"tracker-sim.example","rule":"||tracker-sim.example^$third-party"}}
{"t":"2026-08-06T12:00:01Z","type":"flow.pii","trace":"deadbeef","span":"s1","flow":42,"attrs":{"types":"AD","matches":"AD (ad id) as identity in url"}}
{"t":"2026-08-06T12:00:01Z","type":"flow.policy","trace":"deadbeef","span":"s1","flow":42,"attrs":{"verdict":"leak","types":"AD","clause":"plaintext HTTP: every detected PII class is exposed to on-path eavesdroppers (§3.2 leak condition 1)"}}
{"t":"2026-08-06T12:00:02Z","type":"flow.captured","trace":"deadbeef","span":"s1","flow":43,"attrs":{"host":"api.weather-sim.example","method":"POST","url":"https://api.weather-sim.example/login","protocol":"https","client":"weathernow/android/app","intercepted":"true","start":"2016-04-01T09:00:15Z"}}
{"t":"2026-08-06T12:00:02Z","type":"flow.filter","trace":"deadbeef","span":"s1","flow":43,"attrs":{"decision":"kept","reason":"host not in the background set"}}
{"t":"2026-08-06T12:00:02Z","type":"flow.categorize","trace":"deadbeef","span":"s1","flow":43,"attrs":{"category":"first-party","domain":"weather-sim.example"}}
{"t":"2026-08-06T12:00:02Z","type":"flow.pii","trace":"deadbeef","span":"s1","flow":43,"attrs":{"types":"E,P","matches":"E (email) as identity in body; P (password) as identity in body"}}
{"t":"2026-08-06T12:00:02Z","type":"flow.policy","trace":"deadbeef","span":"s1","flow":43,"attrs":{"verdict":"clean","clause":"HTTPS to first-party: only login credentials, which are exempt (§3.2 footnote 1)"}}
{"t":"2026-08-06T12:00:03Z","type":"flow.captured","trace":"deadbeef","span":"s1","flow":44,"attrs":{"host":"sync.icloud-sim.example","method":"GET","url":"https://sync.icloud-sim.example/keepalive","protocol":"https","client":"weathernow/android/app","intercepted":"true","start":"2016-04-01T09:00:20Z"}}
{"t":"2026-08-06T12:00:03Z","type":"flow.filter","trace":"deadbeef","span":"s1","flow":44,"attrs":{"decision":"dropped","reason":"OS background traffic (§3.2 filtering)"}}
{"t":"2026-08-06T12:00:04Z","type":"experiment.end","trace":"deadbeef","span":"s1","dur_ns":4000000000,"attrs":{"flows":"2","leaks":"1"}}
`

const goldenLeak = `flow 42 · trace deadbeef · experiment weathernow android/app (span s1)

  1. capture     GET http://ads.tracker-sim.example/pixel?adid=123
                 host ads.tracker-sim.example [http, plaintext] at 2016-04-01T09:00:12Z, session "weathernow/android/app"
  2. filter      kept — host not in the background set
  3. categorize  a&a (eTLD+1 tracker-sim.example) — EasyList rule "||tracker-sim.example^$third-party"
  4. pii         AD (ad id) as identity in url
  5. policy      LEAK [AD] — plaintext HTTP: every detected PII class is exposed to on-path eavesdroppers (§3.2 leak condition 1)
`

const goldenClean = `flow 43 · trace deadbeef · experiment weathernow android/app (span s1)

  1. capture     POST https://api.weather-sim.example/login
                 host api.weather-sim.example [https, TLS-intercepted] at 2016-04-01T09:00:15Z, session "weathernow/android/app"
  2. filter      kept — host not in the background set
  3. categorize  first-party (eTLD+1 weather-sim.example)
  4. pii         E (email) as identity in body; P (password) as identity in body
  5. policy      CLEAN — HTTPS to first-party: only login credentials, which are exempt (§3.2 footnote 1)
`

const goldenDropped = `flow 44 · trace deadbeef · experiment weathernow android/app (span s1)

  1. capture     GET https://sync.icloud-sim.example/keepalive
                 host sync.icloud-sim.example [https, TLS-intercepted] at 2016-04-01T09:00:20Z, session "weathernow/android/app"
  2. filter      dropped — OS background traffic (§3.2 filtering)
                 (flow removed before analysis; no verdict)
`

func fixtureEvents(t *testing.T) []Event {
	t.Helper()
	events, err := ReadEvents(strings.NewReader(fixtureTrace))
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestExplainGolden(t *testing.T) {
	events := fixtureEvents(t)
	for _, tc := range []struct {
		name string
		flow int64
		want string
	}{
		{"leaking flow", 42, goldenLeak},
		{"clean flow", 43, goldenClean},
		{"filtered flow", 44, goldenDropped},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Explain(events, tc.flow)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("explain mismatch\n--- got ---\n%s\n--- want ---\n%s", got, tc.want)
			}
		})
	}
}

func TestExplainUnknownFlow(t *testing.T) {
	if _, err := Explain(fixtureEvents(t), 999); err == nil {
		t.Error("want error for unknown flow")
	}
}

func TestFixtureToolViews(t *testing.T) {
	events := fixtureEvents(t)
	if ids := FlowIDs(events); len(ids) != 3 {
		t.Errorf("flow ids: %v", ids)
	}
	sum := Summary(events)
	if !strings.Contains(sum, "flows captured: 3, verdicts: 1 leak / 1 clean") {
		t.Errorf("summary:\n%s", sum)
	}
	if html := TimelineHTML(events); !strings.Contains(html, "weathernow android/app") {
		t.Error("timeline missing experiment row")
	}
}
