package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every representative value must land back in its own bucket, and
	// the midpoint must stay within the documented relative error.
	for _, v := range []int64{0, 1, 5, 63, 64, 65, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		mid := bucketMid(idx)
		if v < exactMax {
			if mid != v {
				t.Fatalf("exact bucket %d: mid = %d", v, mid)
			}
			continue
		}
		if relErr := math.Abs(float64(mid-v)) / float64(v); relErr > 1.0/float64(subBuckets) {
			t.Fatalf("value %d: bucket mid %d, relative error %.4f", v, mid, relErr)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram("ns")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	if got := h.Sum(); got != 500500 {
		t.Fatalf("Sum = %d, want 500500", got)
	}
	checks := []struct {
		q    float64
		want int64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if relErr := math.Abs(float64(got-c.want)) / float64(c.want); relErr > 0.03 {
			t.Errorf("Quantile(%.2f) = %d, want %d ±3%%", c.q, got, c.want)
		}
	}
	s := h.Snapshot()
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("Min/Max = %d/%d, want 1/1000", s.Min, s.Max)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := newHistogram("bytes")
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 0 || s.Count != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	h.Observe(-17) // clamps to 0
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile after negative observe = %d, want 0", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("a", "ns") != r.Histogram("a", "ns") {
		t.Fatal("Histogram not idempotent")
	}
	if got := r.Histogram("a", "bytes").Unit(); got != "ns" {
		t.Fatalf("unit changed on re-lookup: %q", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := New()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("events").Inc()
				r.Gauge("level").Add(1)
				r.Histogram("latency", "ns").Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent readers must not race
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("events").Value(); got != goroutines*perG {
		t.Fatalf("events = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("level").Value(); got != goroutines*perG {
		t.Fatalf("level = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("latency", "ns").Count(); got != goroutines*perG {
		t.Fatalf("latency count = %d, want %d", got, goroutines*perG)
	}
}

func TestSpan(t *testing.T) {
	r := New()
	h := r.Histogram("stage.demo_ns", "ns")
	sp := h.Span()
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Fatalf("span too short: %v", d)
	}
	if h.Count() != 1 || h.Sum() < int64(time.Millisecond) {
		t.Fatalf("span not recorded: count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestWriteJSONAndHandler(t *testing.T) {
	r := New()
	r.Counter("proxy.requests_total").Add(7)
	r.Gauge("campaign.inflight").Set(2)
	r.Histogram("stage.session_ns", "ns").Observe(1500)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Counters["proxy.requests_total"] != 7 {
		t.Fatalf("counter lost in export: %+v", snap.Counters)
	}
	if snap.Gauges["campaign.inflight"] != 2 {
		t.Fatalf("gauge lost in export: %+v", snap.Gauges)
	}
	if h := snap.Histograms["stage.session_ns"]; h.Count != 1 || h.Unit != "ns" {
		t.Fatalf("histogram lost in export: %+v", h)
	}
}

func TestDebugMux(t *testing.T) {
	r := New()
	r.Counter("x").Inc()
	mux := DebugMux(r)
	for _, path := range []string{"/debug/metrics", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
	}
}

func TestStageTable(t *testing.T) {
	r := New()
	r.Histogram("stage.session_ns", "ns").ObserveDuration(3 * time.Millisecond)
	r.Histogram("stage.filter_ns", "ns").ObserveDuration(40 * time.Microsecond)
	r.Histogram("proxy.flow_bytes", "bytes").Observe(2048)
	table := r.Snapshot().StageTable("stage.")
	if !strings.Contains(table, "session_ns") || !strings.Contains(table, "filter_ns") {
		t.Fatalf("missing stages:\n%s", table)
	}
	if strings.Contains(table, "proxy.flow_bytes") {
		t.Fatalf("non-stage histogram leaked into table:\n%s", table)
	}
	if !strings.Contains(table, "ms") {
		t.Fatalf("durations not humanized:\n%s", table)
	}
	if got := r.Snapshot().StageTable("nomatch."); got != "" {
		t.Fatalf("empty prefix match should render nothing, got:\n%s", got)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    int64
		unit string
		want string
	}{
		{1500, "ns", "2µs"},
		{int64(2500 * time.Millisecond), "ns", "2.50s"},
		{int64(3 * time.Millisecond), "ns", "3.0ms"},
		{999, "ns", "999ns"},
		{512, "bytes", "512B"},
		{4096, "bytes", "4.0KiB"},
		{3 << 20, "bytes", "3.0MiB"},
		{12, "count", "12"},
	}
	for _, c := range cases {
		if got := formatValue(c.v, c.unit); got != c.want {
			t.Errorf("formatValue(%d, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}
