package obs

import (
	"time"
)

// Watch is one SLO-burn rule: a threshold over a windowed value,
// evaluated on every Recorder tick. A watch observes exactly one of
//
//   - Rate: the per-second rate of a counter over Window;
//   - Gauge: the instantaneous level of a gauge;
//   - Quantile: a quantile estimate (Q: "p50", "p95", "p99") of a
//     histogram's cumulative distribution.
//
// When the observed value crosses the threshold (Op ">" or "<"), the
// watch trips: one structured slog warning names the rule, value, and
// threshold, and obs.watch.trips_total increments. The warning fires on
// the transition only — a rule that stays tripped logs once, then once
// more (at info) when it recovers. This is deliberately a pressure-relief
// valve, not an alerting system: avwserve and avwrun use it to make SLO
// burn visible in their own logs without any external scrape
// infrastructure.
type Watch struct {
	// Name identifies the rule in log lines.
	Name string
	// Rate names a counter whose per-second rate over Window is watched.
	Rate string
	// Gauge names a gauge whose level is watched.
	Gauge string
	// Quantile names a histogram whose Q quantile is watched.
	Quantile string
	// Q selects the quantile for Quantile watches: "p50", "p95", "p99"
	// (default "p99").
	Q string
	// Window is the rate window for Rate watches. Default 1m.
	Window time.Duration
	// Op is the comparison that trips the watch: ">" (default) or "<".
	Op string
	// Threshold is the boundary value (same unit as the watched metric:
	// events/s for rates, the gauge's unit, nanoseconds for duration
	// quantiles).
	Threshold float64
}

// withDefaults fills the documented defaults.
func (w Watch) withDefaults() Watch {
	if w.Window <= 0 {
		w.Window = time.Minute
	}
	if w.Op == "" {
		w.Op = ">"
	}
	if w.Q == "" {
		w.Q = "p99"
	}
	return w
}

// watchState tracks one rule's trip state across ticks.
type watchState struct {
	Watch
	tripped bool
}

// evalWatches evaluates every rule against the current ring.
func (rec *Recorder) evalWatches() {
	if len(rec.watches) == 0 {
		return
	}
	ticks := rec.ticks()
	if len(ticks) == 0 {
		return
	}
	cur := ticks[len(ticks)-1]
	for _, ws := range rec.watches {
		v, ok := watchValue(ws.Watch, ticks, cur)
		if !ok {
			continue
		}
		trip := (ws.Op == ">" && v > ws.Threshold) || (ws.Op == "<" && v < ws.Threshold)
		switch {
		case trip && !ws.tripped:
			ws.tripped = true
			rec.trips.Inc()
			rec.logger.Warn("watch tripped",
				"watch", ws.Name, "value", v, "op", ws.Op,
				"threshold", ws.Threshold, "window", fmtWindow(ws.Window))
		case !trip && ws.tripped:
			ws.tripped = false
			rec.logger.Info("watch recovered",
				"watch", ws.Name, "value", v, "op", ws.Op,
				"threshold", ws.Threshold)
		}
	}
}

// watchValue extracts the observed value for one rule. Reports false when
// the metric has no data yet (e.g. a rate with fewer than two ticks).
func watchValue(w Watch, ticks []tickSample, cur tickSample) (float64, bool) {
	switch {
	case w.Rate != "":
		then, ok := baseline(ticks, cur.at, w.Window)
		if !ok {
			return 0, false
		}
		elapsed := cur.at.Sub(then.at).Seconds()
		if elapsed <= 0 {
			return 0, false
		}
		v, ok := cur.snap.Counters[w.Rate]
		if !ok {
			return 0, false
		}
		return float64(v-then.snap.Counters[w.Rate]) / elapsed, true
	case w.Gauge != "":
		v, ok := cur.snap.Gauges[w.Gauge]
		return float64(v), ok
	case w.Quantile != "":
		h, ok := cur.snap.Histograms[w.Quantile]
		if !ok || h.Count == 0 {
			return 0, false
		}
		switch w.Q {
		case "p50":
			return float64(h.P50), true
		case "p95":
			return float64(h.P95), true
		default:
			return float64(h.P99), true
		}
	}
	return 0, false
}
