package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger builds the structured logger the cmd binaries share: JSON
// records on w, every record carrying the emitting component and, when a
// trace is active, the campaign trace ID — so log lines and trace events
// join on the same key (docs/tracing.md).
func NewLogger(w io.Writer, component, traceID string, level slog.Level) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	logger := slog.New(h).With("component", component)
	if traceID != "" {
		logger = logger.With("trace", traceID)
	}
	return logger
}

// NopLogger returns a logger that discards everything; the default when no
// logger is injected, so library code can log unconditionally.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler discards all records. (slog.DiscardHandler requires a newer
// Go than this module targets.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
