package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values below 2^subBits*2 are counted exactly;
// above that, each power-of-two octave is split into 2^subBits log-linear
// sub-buckets, bounding the relative quantile error at 2^-(subBits+1)
// (< 1.6% for subBits = 5). The layout is fixed at compile time so
// recording is a single atomic add into a flat array — no resizing, no
// locks, no allocation.
const (
	subBits    = 5
	subBuckets = 1 << subBits   // 32 sub-buckets per octave
	exactMax   = subBuckets * 2 // values < 64 get exact buckets
	numBuckets = exactMax + (64-subBits-1)*subBuckets
)

// Histogram is a streaming log-bucket histogram of non-negative int64
// observations (durations in nanoseconds, sizes in bytes). The zero value
// is NOT ready to use — obtain histograms from a Registry, which stamps
// the unit. All methods are safe for concurrent callers; Observe is
// wait-free.
type Histogram struct {
	unit    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until the first observation
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func newHistogram(unit string) *Histogram {
	h := &Histogram{unit: unit}
	h.min.Store(math.MaxInt64)
	return h
}

// Unit reports the unit label the histogram was registered with.
func (h *Histogram) Unit() string { return h.unit }

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Span starts a wall-clock span timer that records into h when ended.
func (h *Histogram) Span() Span { return Span{h: h, start: time.Now()} }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-th quantile (0 < q <= 1) of the observations.
// It returns 0 when the histogram is empty. The estimate is the midpoint
// of the log-linear bucket containing the target rank, so the relative
// error is bounded by the bucket width (< 2%).
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			return h.clamp(bucketMid(i))
		}
	}
	return h.max.Load()
}

// clamp bounds a bucket-midpoint estimate by the true observed extremes,
// so a quantile never reads above the max (or below the min).
func (h *Histogram) clamp(v int64) int64 {
	if max := h.max.Load(); v > max {
		return max
	}
	if min := h.min.Load(); v < min && min != math.MaxInt64 {
		return min
	}
	return v
}

// HistogramSnapshot is a point-in-time summary of a Histogram. Concurrent
// observations during the snapshot may be partially reflected; each field
// is individually consistent.
type HistogramSnapshot struct {
	Unit  string `json:"unit"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Unit:  h.unit,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if min := h.min.Load(); min != math.MaxInt64 {
		s.Min = min
	}
	return s
}

// mergeHistograms sums the raw bucket counts of several histograms into
// one snapshot — the aggregate a single histogram receiving every
// observation would report (same buckets, hence byte-identical quantile
// estimates). Used for HistogramVec rollups.
func mergeHistograms(unit string, hs []*Histogram) HistogramSnapshot {
	var buckets [numBuckets]int64
	var count, sum, max int64
	min := int64(math.MaxInt64)
	for _, h := range hs {
		count += h.count.Load()
		sum += h.sum.Load()
		if m := h.min.Load(); m < min {
			min = m
		}
		if m := h.max.Load(); m > max {
			max = m
		}
		for i := range h.buckets {
			buckets[i] += h.buckets[i].Load()
		}
	}
	s := HistogramSnapshot{Unit: unit, Count: count, Sum: sum, Max: max}
	if min != math.MaxInt64 {
		s.Min = min
	}
	quantile := func(q float64) int64 {
		if count == 0 {
			return 0
		}
		target := int64(math.Ceil(q * float64(count)))
		if target < 1 {
			target = 1
		}
		var cum int64
		for i := range buckets {
			cum += buckets[i]
			if cum >= target {
				v := bucketMid(i)
				if v > max {
					v = max
				}
				if v < s.Min && min != math.MaxInt64 {
					v = s.Min
				}
				return v
			}
		}
		return max
	}
	s.P50, s.P95, s.P99 = quantile(0.50), quantile(0.95), quantile(0.99)
	return s
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < exactMax {
		return int(u)
	}
	k := bits.Len64(u) // k >= subBits+2
	sub := (u >> (k - subBits - 1)) & (subBuckets - 1)
	return exactMax + (k-subBits-2)*subBuckets + int(sub)
}

// bucketMid returns the midpoint of a bucket's value range.
func bucketMid(idx int) int64 {
	if idx < exactMax {
		return int64(idx)
	}
	octave := (idx - exactMax) / subBuckets
	sub := (idx - exactMax) % subBuckets
	low := int64(1)<<(octave+subBits+1) + int64(sub)<<(octave+1)
	width := int64(1) << (octave + 1)
	return low + width/2
}

// Span measures one wall-clock interval into a histogram.
type Span struct {
	h     *Histogram
	start time.Time
}

// End stops the span, records the elapsed wall time, and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	s.h.ObserveDuration(d)
	return d
}
