package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus / OpenMetrics text exposition of a Registry. One encoder
// serves both dialects: the classic text format 0.0.4 (what a default
// Prometheus scrape_config consumes) and OpenMetrics 1.0 (# UNIT
// metadata, counter families named without the _total sample suffix, a
// terminating # EOF). Families are emitted in sorted name order and
// series in sorted label order, so the output is byte-stable for golden
// tests and diffing two scrapes.
//
// Mapping from the registry's dotted names:
//
//   - names sanitize to [a-zA-Z0-9_:] (dots and dashes become '_');
//   - counters gain a _total sample suffix when they lack one;
//   - labeled families render real label pairs instead of the legacy
//     dotted suffixes (pii_match_hits_total{encoding="md5"});
//   - histograms render as summaries: {quantile="0.5"|"0.95"|"0.99"},
//     _sum and _count, matching the JSON snapshot's fields. Histogram
//     rollups are omitted — the labeled family already carries the data
//     and an aggregation would duplicate the prom name.

const (
	promContentType        = "text/plain; version=0.0.4; charset=utf-8"
	openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// WriteProm writes the registry in the Prometheus text format 0.0.4.
func (r *Registry) WriteProm(w io.Writer) error { return r.writeExposition(w, false) }

// WriteOpenMetrics writes the registry in the OpenMetrics 1.0 text
// format, ending with # EOF.
func (r *Registry) WriteOpenMetrics(w io.Writer) error { return r.writeExposition(w, true) }

// sample is one exposition line before formatting: a sample-name suffix,
// label pairs, and a value.
type sample struct {
	suffix string // appended to the family sample name ("", "_sum", ...)
	labels []labelPair
	value  int64
}

type labelPair struct{ name, value string }

// family is one metric family: metadata plus its samples.
type family struct {
	name    string // sanitized family name (without counter _total)
	mtype   string // counter | gauge | summary
	unit    string
	help    string
	counter bool // samples carry the _total suffix
	samples []sample
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	cvecs := make(map[string]*CounterVec, len(r.counterVecs))
	for n, v := range r.counterVecs {
		cvecs[n] = v
	}
	gvecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for n, v := range r.gaugeVecs {
		gvecs[n] = v
	}
	hvecs := make(map[string]*HistogramVec, len(r.histogramVecs))
	for n, v := range r.histogramVecs {
		hvecs[n] = v
	}
	r.mu.RUnlock()

	var fams []family
	for name, c := range counters {
		fams = append(fams, family{
			name: counterFamilyName(name), mtype: "counter", counter: true,
			help:    helpFor(name),
			samples: []sample{{value: c.Value()}},
		})
	}
	for name, v := range cvecs {
		f := family{
			name: counterFamilyName(name), mtype: "counter", counter: true,
			help: helpFor(name),
		}
		v.v.series(func(vals []string, c *Counter) {
			f.samples = append(f.samples, sample{labels: pairs(v.v.labels, vals), value: c.Value()})
		})
		fams = append(fams, f)
	}
	for name, g := range gauges {
		fams = append(fams, family{
			name: sanitizeName(name), mtype: "gauge", help: helpFor(name),
			samples: []sample{{value: g.Value()}},
		})
	}
	for name, v := range gvecs {
		f := family{name: sanitizeName(name), mtype: "gauge", help: helpFor(name)}
		v.v.series(func(vals []string, g *Gauge) {
			f.samples = append(f.samples, sample{labels: pairs(v.v.labels, vals), value: g.Value()})
		})
		fams = append(fams, f)
	}
	for name, h := range histograms {
		f := family{name: sanitizeName(name), mtype: "summary", unit: h.Unit(), help: helpFor(name)}
		f.samples = summarySamples(nil, h.Snapshot())
		fams = append(fams, f)
	}
	for name, v := range hvecs {
		f := family{
			name:  sanitizeName(name) + "_" + v.unit,
			mtype: "summary", unit: v.unit, help: helpFor(name),
		}
		v.v.series(func(vals []string, h *Histogram) {
			f.samples = append(f.samples, summarySamples(pairs(v.v.labels, vals), h.Snapshot())...)
		})
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		famName := f.name
		if f.counter && openMetrics {
			// OpenMetrics names the family without the _total suffix;
			// the samples keep it.
			famName = strings.TrimSuffix(f.name, "_total")
		}
		sampleName := f.name
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", famName, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", famName, f.mtype)
		if openMetrics && f.unit != "" {
			fmt.Fprintf(bw, "# UNIT %s %s\n", famName, f.unit)
		}
		for _, s := range f.samples {
			bw.WriteString(sampleName)
			bw.WriteString(s.suffix)
			if len(s.labels) > 0 {
				bw.WriteByte('{')
				for i, lp := range s.labels {
					if i > 0 {
						bw.WriteByte(',')
					}
					// %q escapes exactly what the exposition format
					// requires in label values: backslash, double quote,
					// and newline.
					fmt.Fprintf(bw, "%s=%q", sanitizeName(lp.name), lp.value)
				}
				bw.WriteByte('}')
			}
			fmt.Fprintf(bw, " %d\n", s.value)
		}
	}
	if openMetrics {
		bw.WriteString("# EOF\n")
	}
	return bw.Flush()
}

// summarySamples renders one histogram snapshot as summary samples with
// the given base labels.
func summarySamples(base []labelPair, s HistogramSnapshot) []sample {
	q := func(v string) []labelPair {
		return append(append([]labelPair(nil), base...), labelPair{"quantile", v})
	}
	return []sample{
		{labels: q("0.5"), value: s.P50},
		{labels: q("0.95"), value: s.P95},
		{labels: q("0.99"), value: s.P99},
		{suffix: "_sum", labels: base, value: s.Sum},
		{suffix: "_count", labels: base, value: s.Count},
	}
}

func pairs(names, vals []string) []labelPair {
	out := make([]labelPair, len(names))
	for i := range names {
		out[i] = labelPair{names[i], vals[i]}
	}
	return out
}

// counterFamilyName sanitizes a counter name and guarantees the _total
// sample suffix prom conventions expect.
func counterFamilyName(name string) string {
	n := sanitizeName(name)
	if !strings.HasSuffix(n, "_total") {
		n += "_total"
	}
	return n
}

// sanitizeName maps a dotted registry name onto the prom name alphabet
// [a-zA-Z0-9_:], with a leading underscore if the name starts with a digit.
func sanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// helpFor resolves a family's help text from the metric catalog.
func helpFor(name string) string {
	if d, ok := Describe(name); ok {
		return d.Help
	}
	return ""
}

// escapeHelp escapes a HELP line per the exposition format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
