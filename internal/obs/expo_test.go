package obs

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry exercising every metric
// kind: plain counter/gauge/histogram, all three vec kinds (including a
// multi-label family and label values needing escaping), and a rollup.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("pii.scan.calls_total").Add(42)
	r.Counter("proxy.flows_total").Add(7)
	r.Gauge("serve.sse_subscribers").Set(3)
	h := r.Histogram("serve.request_ns", "ns")
	for _, v := range []int64{1000, 2000, 4000, 8000, 100000} {
		h.Observe(v)
	}

	cv := r.CounterVec("pii.match.hits", "encoding")
	cv.WithLabelValues("identity").Add(10)
	cv.WithLabelValues("md5").Add(2)
	cv.WithLabelValues(`we"ird\enc`).Inc() // label-value escaping

	gv := r.GaugeVec("journal.depth", "shard", "state")
	gv.WithLabelValues("0", "live").Set(5)
	gv.WithLabelValues("1", "idle").Set(1)

	hv := r.HistogramVec("stage", "ns", "stage")
	hv.WithLabelValues("session").Observe(1500)
	hv.WithLabelValues("session").Observe(2500)
	hv.WithLabelValues("detect").Observe(300)

	r.HistogramVec("analysis.compute", "ns", "artifact").
		WithRollup("analysis.compute_ns").
		WithLabelValues("report").Observe(5000)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestSnapshotJSONGolden pins the legacy /debug/metrics JSON byte-for-byte:
// the vec migration must keep every pre-existing flat name
// (pii.match.hits.<encoding>, stage.<stage>_ns, analysis.compute_ns, ...)
// exactly as it serialized before labels existed.
func TestSnapshotJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", buf.Bytes())
}

func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom", buf.Bytes())
}

func TestWriteOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasSuffix(out, []byte("# EOF\n")) {
		t.Error("OpenMetrics output must end with # EOF")
	}
	checkGolden(t, "metrics.om", out)
}

// TestExpositionWellFormed checks structural invariants beyond the golden
// bytes: every sample line belongs to a declared family, names stay in the
// prom alphabet, and no family is declared twice.
func TestExpositionWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	types := make(map[string]string)
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || line == "# EOF" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Errorf("family %s declared twice", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		if strings.ContainsAny(name, ".-") {
			t.Errorf("unsanitized sample name %q", name)
		}
		found := false
		for fam := range types {
			if name == fam || strings.HasPrefix(name, fam+"_") ||
				(types[fam] == "counter" && name == fam+"_total") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("sample %q has no declared family", name)
		}
	}
	if len(types) == 0 {
		t.Fatal("no TYPE lines emitted")
	}
}

func TestHandlerNegotiation(t *testing.T) {
	r := goldenRegistry()
	get := func(target string, accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		w := httptest.NewRecorder()
		r.Handler().ServeHTTP(w, req)
		return w
	}

	if w := get("/debug/metrics", ""); !strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		t.Errorf("default content type = %q, want JSON", w.Header().Get("Content-Type"))
	}
	if w := get("/debug/metrics?format=prom", ""); w.Header().Get("Content-Type") != promContentType {
		t.Errorf("?format=prom content type = %q", w.Header().Get("Content-Type"))
	}
	if w := get("/debug/metrics?format=openmetrics", ""); w.Header().Get("Content-Type") != openMetricsContentType {
		t.Errorf("?format=openmetrics content type = %q", w.Header().Get("Content-Type"))
	}
	if w := get("/debug/metrics", "application/openmetrics-text;version=1.0.0"); w.Header().Get("Content-Type") != openMetricsContentType {
		t.Errorf("Accept openmetrics content type = %q", w.Header().Get("Content-Type"))
	}
	if w := get("/debug/metrics", "text/plain"); w.Header().Get("Content-Type") != promContentType {
		t.Errorf("Accept text/plain content type = %q", w.Header().Get("Content-Type"))
	}
	// An explicit ?format=json wins over an Accept header.
	if w := get("/debug/metrics?format=json", "text/plain"); !strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		t.Errorf("?format=json with Accept text/plain = %q", w.Header().Get("Content-Type"))
	}
}

// TestDebugMuxPprof pins the profiler mounts: /debug/pprof/heap and
// /debug/pprof/goroutine must resolve through DebugMux (they route via
// pprof.Index's path dispatch, which a refactor could silently drop).
func TestDebugMuxPprof(t *testing.T) {
	mux := DebugMux(New())
	for _, path := range []string{
		"/debug/pprof/heap?debug=1",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/",
	} {
		req := httptest.NewRequest("GET", path, nil)
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, w.Code)
		}
		if w.Body.Len() == 0 {
			t.Errorf("GET %s returned empty body", path)
		}
	}
}

func TestDebugMuxSeriesWithoutRecorder(t *testing.T) {
	mux := DebugMux(New())
	req := httptest.NewRequest("GET", "/debug/metrics/series", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("series without recorder = %d, want 404", w.Code)
	}
}
