package obs

import (
	"fmt"
	"strings"
	"time"
)

// formatStageTable lays out histogram summaries as fixed-width text.
func formatStageTable(prefix string, names []string, hs map[string]HistogramSnapshot) string {
	if len(names) == 0 {
		return ""
	}
	rows := make([][]string, 0, len(names)+1)
	rows = append(rows, []string{"stage", "count", "p50", "p95", "p99", "max", "total"})
	for _, name := range names {
		h := hs[name]
		label := strings.TrimPrefix(name, prefix)
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%d", h.Count),
			formatValue(h.P50, h.Unit),
			formatValue(h.P95, h.Unit),
			formatValue(h.P99, h.Unit),
			formatValue(h.Max, h.Unit),
			formatValue(h.Sum, h.Unit),
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatValue renders a histogram value in its unit: nanoseconds become
// rounded durations, bytes get binary-prefix sizes, anything else is a
// plain number.
func formatValue(v int64, unit string) string {
	switch unit {
	case "ns":
		return formatDuration(time.Duration(v))
	case "bytes":
		return formatBytes(v)
	default:
		return fmt.Sprintf("%d", v)
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
