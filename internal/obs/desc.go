package obs

import "sort"

// MetricDesc is the in-code description of one metric family: its type,
// unit, label dimensions, and one-line help text. The table below is the
// canonical metric catalog — the OpenMetrics encoder derives # HELP and
// # TYPE metadata from it, and the metric/doc drift lint
// (metricsdoc_test.go at the repo root) fails the build when a metric is
// emitted in code but missing here or in docs/metrics.md (or vice versa).
type MetricDesc struct {
	Type   string   // "counter", "gauge", or "histogram"
	Unit   string   // histogram unit ("ns", "bytes"); empty otherwise
	Labels []string // label dimensions for vec families; nil for flat metrics
	Help   string   // one-line meaning, rendered as # HELP
}

// descriptions catalogs every metric family the instrumented packages
// emit, keyed by the code-level family name (vec families without their
// label or unit suffixes). Keep docs/metrics.md in sync — the drift lint
// enforces it.
var descriptions = map[string]MetricDesc{
	// internal/obs itself
	"obs.unit_conflicts_total":      {Type: "counter", Help: "Histogram registrations that disagreed with the first caller's unit; the first unit is kept."},
	"obs.label_conflicts_total":     {Type: "counter", Help: "Vec registrations that disagreed with the first caller's label names; the first label set is kept."},
	"obs.cardinality_limited_total": {Type: "counter", Help: "Series resolutions collapsed into a vec's shared overflow series because the family hit its cardinality bound."},
	"obs.watch.trips_total":         {Type: "counter", Help: "Watch rules that transitioned into the tripped state (threshold crossed over its window)."},

	// internal/proxy
	"proxy.requests_total":             {Type: "counter", Help: "Request/response exchanges served (plaintext + tunneled), across every proxy instance in the process."},
	"proxy.tunnels_total":              {Type: "counter", Help: "CONNECT tunnels accepted."},
	"proxy.tunnel_failures_total":      {Type: "counter", Help: "TLS-intercept failures: handshakes that failed or timed out, or tunnels aborted before the first request."},
	"proxy.upstream_errors_total":      {Type: "counter", Help: "502s returned because the upstream dial or round-trip failed."},
	"proxy.bytes_up_total":             {Type: "counter", Help: "Approximate request wire bytes through all proxies."},
	"proxy.bytes_down_total":           {Type: "counter", Help: "Approximate response wire bytes through all proxies."},
	"proxy.flow_bytes":                 {Type: "histogram", Unit: "bytes", Help: "Wire size (up + down) of one captured exchange."},
	"proxy.inline.flows_total":         {Type: "counter", Help: "Exchanges inspected by the inline streaming PII gateway (verdict or not)."},
	"proxy.inline.bytes_total":         {Type: "counter", Help: "Request body bytes fed through the gateway's stream scanner as they transited."},
	"proxy.inline.matches_total":       {Type: "counter", Help: "PII occurrences (URL + headers + body) behind inline verdicts."},
	"proxy.inline.verdicts":            {Type: "counter", Labels: []string{"action"}, Help: "Flows that carried ground-truth PII, by the mitigation action applied (log, redact, block)."},
	"proxy.tunnel_idle_reaps_total":    {Type: "counter", Help: "Established tunnels reaped by the idle read deadline between requests (interception worked; the client went silent). Counted apart from tunnel failures."},
	"proxy.h2.conns_total":             {Type: "counter", Help: "CONNECT tunnels whose client negotiated HTTP/2 via ALPN and were served by the multiplexing h2 path."},
	"proxy.h2.streams_total":           {Type: "counter", Help: "HTTP/2 streams decoded into per-stream flows across all h2 tunnels."},
	"proxy.h2.streamid_fallback_total": {Type: "counter", Help: "Streams whose true wire ID could not be read from the h2 server internals and were stamped with an arrival-order guess instead (nonzero means a Go stdlib layout change)."},
	"proxy.ws.conns_total":             {Type: "counter", Help: "Tunneled requests upgraded to WebSocket and relayed frame-by-frame."},
	"proxy.ws.frames":                  {Type: "counter", Labels: []string{"dir"}, Help: "WebSocket frames relayed, by direction (up = client-to-origin and scanned inline, down = origin-to-client)."},
	"proxy.ws.bytes_total":             {Type: "counter", Help: "WebSocket payload bytes relayed in both directions (pre-mitigation sizes)."},

	// internal/pii
	"pii.scan.calls_total":   {Type: "counter", Help: "Matcher/Scanner scan invocations on non-empty content."},
	"pii.scan.needles_total": {Type: "counter", Help: "Needles covered per scan (scan calls x needles per matcher) — the detection workload volume."},
	"pii.match.hits":         {Type: "counter", Labels: []string{"encoding"}, Help: "Needle hits by wire encoding (identity, base64, md5, ...)."},
	"pii.stream.bytes_total": {Type: "counter", Help: "Bytes consumed by StreamScanner writes (the streaming detection workload volume)."},

	// internal/easylist
	"easylist.hostcache.hits_total":      {Type: "counter", Help: "Host-to-A&A-verdict lookups answered from the HostCache memo without walking the rule list."},
	"easylist.hostcache.misses_total":    {Type: "counter", Help: "Lookups that fell through to a full List match (the verdict is then cached)."},
	"easylist.hostcache.evictions_total": {Type: "counter", Help: "Resident verdicts evicted because an insert pushed the cache past its size bound."},

	// internal/domains
	"domains.catcache.hits_total":      {Type: "counter", Help: "(service, host)-to-category lookups answered from the Categorizer memo."},
	"domains.catcache.misses_total":    {Type: "counter", Help: "Categorizations computed from scratch (suffix walk + EasyList probe), then cached."},
	"domains.catcache.evictions_total": {Type: "counter", Help: "Cached categories evicted by the per-shard size bound."},

	// internal/recon
	"recon.train.flows_total": {Type: "counter", Help: "Labeled flows fed to classifier training (cumulative over Train calls)."},
	"recon.train_ns":          {Type: "histogram", Unit: "ns", Help: "One classifier training pass."},
	"recon.eval_ns":           {Type: "histogram", Unit: "ns", Help: "One evaluation pass over labeled flows."},

	// internal/core
	"campaign.experiments_total": {Type: "counter", Help: "Experiments completed (including pinning exclusions)."},
	"campaign.excluded_total":    {Type: "counter", Help: "Experiments excluded because certificate pinning prevented decryption."},
	"campaign.retries":           {Type: "counter", Help: "Experiment attempts retried after a transient failure (exponential backoff)."},
	"campaign.skipped":           {Type: "counter", Help: "Experiments dropped by the skip/retry-then-skip failure policies."},
	"campaign.deadline_exceeded": {Type: "counter", Help: "Experiment attempts cut down by Options.ExperimentTimeout."},
	"campaign.resumed":           {Type: "counter", Help: "Experiments replayed from a -resume journal instead of re-measured."},
	"campaign.stale_resume":      {Type: "counter", Help: "Resume-journal records that matched no experiment in the current campaign spec; ignored."},
	"campaign.flows_total":       {Type: "counter", Help: "Post-filter (foreground) flows analyzed."},
	"campaign.leaks_total":       {Type: "counter", Help: "Leak records produced by the paper's 3.2 policy."},
	"campaign.inflight":          {Type: "gauge", Help: "Experiments currently executing (bounded by Options.Parallelism)."},
	"campaign.jobs":              {Type: "gauge", Help: "Total experiments in the running campaign (set once at campaign start)."},
	"campaign.experiment_ns":     {Type: "histogram", Unit: "ns", Help: "Whole experiment: proxy boot, session, analysis, trace save."},
	"stage":                      {Type: "histogram", Unit: "ns", Labels: []string{"stage"}, Help: "Pipeline stage wall time per experiment (session, filter, detect, categorize, recon)."},

	// internal/shard
	"campaign.shards":           {Type: "gauge", Help: "Shard count of the running distributed campaign (set once by the coordinator)."},
	"campaign.reassigned_total": {Type: "counter", Help: "Shard relaunches after a worker died or its heartbeat lease expired; journal resume bounds the re-run work."},
	"shard.lease_expired":       {Type: "counter", Help: "Worker heartbeat leases that expired (no progress within Config.LeaseTTL); the worker is killed and its shard reassigned."},

	// internal/serve
	"serve.requests_total":     {Type: "counter", Help: "HTTP requests handled by the report server (app, /api/*, /live; debug endpoints and the SSE stream excluded)."},
	"serve.responses":          {Type: "counter", Labels: []string{"class"}, Help: "Responses by status class (2xx, 3xx, 4xx, 5xx) on the instrumented routes."},
	"serve.request_ns":         {Type: "histogram", Unit: "ns", Help: "Report-server request latency (app, /api/*, /live; SSE excluded)."},
	"serve.sse_subscribers":    {Type: "gauge", Help: "SSE clients currently connected at /api/{ds}/events."},
	"serve.sse_connects_total": {Type: "counter", Help: "SSE subscriptions accepted at /api/{ds}/events (cumulative)."},
	"serve.sse_events_total":   {Type: "counter", Help: "Invalidate frames written to SSE clients (hello and keepalive frames excluded)."},
	"serve.sse_evicted_total":  {Type: "counter", Help: "SSE clients disconnected because their event queue overflowed (slow consumer evicted)."},

	// internal/analysis
	"analysis.cache_hits_total":        {Type: "counter", Help: "Artifact requests served from the engine cache (warm fetches plus singleflight joiners)."},
	"analysis.cache_misses_total":      {Type: "counter", Help: "Artifact requests that computed: one per (dataset-view fingerprint, artifact) pair actually built."},
	"analysis.cache_evictions_total":   {Type: "counter", Help: "Cached artifacts evicted because an insert pushed the cache past EngineOptions.MaxEntries."},
	"analysis.store_hits_total":        {Type: "counter", Help: "Artifact requests rehydrated from the persistent store instead of computed."},
	"analysis.store_misses_total":      {Type: "counter", Help: "Store lookups that found no entry (the artifact is then computed and written back)."},
	"analysis.store_writes_total":      {Type: "counter", Help: "Artifacts mirrored into the store after a compute (atomic temp+rename)."},
	"analysis.store_errors_total":      {Type: "counter", Help: "Store reads/writes that failed, including SHA-256-verified corrupt entries (deleted and recomputed)."},
	"analysis.store_read_bytes_total":  {Type: "counter", Help: "Payload bytes rehydrated from the store."},
	"analysis.store_write_bytes_total": {Type: "counter", Help: "Payload bytes written to the store."},
	"analysis.events_published_total":  {Type: "counter", Help: "Invalidation events published on the engine's event bus (one per dataset update)."},
	"analysis.events_dropped_total":    {Type: "counter", Help: "Subscribers evicted from the bus because their queue was full when an event arrived."},
	"analysis.live.records_total":      {Type: "counter", Help: "Journal records folded into live partial datasets by -live tails."},
	"analysis.live.folds_total":        {Type: "counter", Help: "Dataset generations produced by live tailing (one per poll that saw new records)."},
	"analysis.live.bad_lines_total":    {Type: "counter", Help: "Complete-but-undecodable journal lines a live tail skipped."},
	"analysis.live.resets_total":       {Type: "counter", Help: "Live folds discarded because the journal was replaced (shrank, changed inode, or failed the first-line fingerprint — a fresh campaign reused the path)."},
	"analysis.live.poll_errors_total":  {Type: "counter", Help: "Background journal polls that failed (retried next tick)."},
	"analysis.datasets":                {Type: "gauge", Help: "Datasets registered with the artifact engine (static + live)."},
	"analysis.live.experiments":        {Type: "gauge", Help: "Experiments folded so far by the most recent live-tail poll."},
	"analysis.compute":                 {Type: "histogram", Unit: "ns", Labels: []string{"artifact"}, Help: "Compute latency per artifact ID; observed on cache misses only."},
	"analysis.compute_ns":              {Type: "histogram", Unit: "ns", Help: "One artifact computation, any artifact (rollup of the analysis.compute family)."},

	// runtime self-scrape (obs.Recorder)
	"runtime.goroutines":  {Type: "gauge", Help: "Live goroutines, sampled from runtime/metrics each recorder tick."},
	"runtime.heap_bytes":  {Type: "gauge", Help: "Bytes of live heap objects, sampled from runtime/metrics each recorder tick."},
	"runtime.alloc_bytes": {Type: "gauge", Help: "Cumulative bytes allocated on the heap, sampled from runtime/metrics each recorder tick."},
	"runtime.gc_cycles":   {Type: "gauge", Help: "Completed GC cycles, sampled from runtime/metrics each recorder tick."},
}

// Describe returns the catalog entry for a code-level metric family name.
func Describe(name string) (MetricDesc, bool) {
	d, ok := descriptions[name]
	return d, ok
}

// DescribedMetrics lists every cataloged family name, sorted — the
// canonical metric inventory the doc drift lint compares against code and
// docs/metrics.md.
func DescribedMetrics() []string {
	names := make([]string, 0, len(descriptions))
	for n := range descriptions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
