package obs

import (
	"sort"
	"strings"
	"sync"
)

// Labeled metric vectors: a vec is one named metric family whose series
// are distinguished by an ordered tuple of label values — the dimensional
// layer under "leak rate per encoding" or "stage latency per stage". The
// design splits cost the same way Registry does: resolving a series
// (WithLabelValues) takes a read-mostly lock and builds a canonical key,
// but the returned child is a plain Counter/Gauge/Histogram, so the
// update itself stays wait-free. Hot paths resolve once and reuse the
// child; occasional callers pay one pooled key build plus a map read.
//
// Cardinality is bounded per family: the first maxSeries distinct label
// tuples each get their own series, and every tuple beyond that collapses
// into a shared overflow series labeled "other" (obs.cardinality_limited_total
// counts the collapsed resolutions). Counters must never silently lose
// observations, so the bound collapses instead of evicting — an evicted
// counter would restart at zero and corrupt every windowed rate computed
// over it.

// DefaultMaxSeries bounds the distinct label tuples per vec family.
// High enough for every planned dimension (encodings, artifact IDs,
// stages, shards), low enough that a label mistakenly carrying a
// per-flow value cannot grow the registry without bound.
const DefaultMaxSeries = 256

// OverflowLabel is the label value shared by all series collapsed by the
// cardinality bound.
const OverflowLabel = "other"

// keySep separates label values inside a canonical series key. 0xff never
// appears in UTF-8 text, so joined values cannot collide.
const keySep = "\xff"

// keyBuilders pools the scratch used to canonicalize label tuples, so a
// cold WithLabelValues does not allocate for the lookup itself (the key
// string is only materialized on first insert).
var keyBuilders = sync.Pool{New: func() any { return new(strings.Builder) }}

// seriesKey canonicalizes a label tuple into one string key.
func seriesKey(vals []string) string {
	if len(vals) == 1 {
		return vals[0]
	}
	b := keyBuilders.Get().(*strings.Builder)
	b.Reset()
	for i, v := range vals {
		if i > 0 {
			b.WriteString(keySep)
		}
		b.WriteString(v)
	}
	k := b.String()
	keyBuilders.Put(b)
	return k
}

// vec is the shared series table under CounterVec/GaugeVec/HistogramVec.
type vec[T any] struct {
	name    string
	labels  []string
	max     int
	limited *Counter // obs.cardinality_limited_total, shared registry-wide

	mu       sync.RWMutex
	children map[string]*T
	order    []string // insertion order of keys, for deterministic export
	vals     map[string][]string
	overflow *T
}

func newVec[T any](name string, labels []string, max int, limited *Counter) *vec[T] {
	if max <= 0 {
		max = DefaultMaxSeries
	}
	return &vec[T]{
		name: name, labels: labels, max: max, limited: limited,
		children: make(map[string]*T),
		vals:     make(map[string][]string),
	}
}

// get resolves the series for a label tuple, creating it (via mk) on first
// use. Tuples beyond the cardinality bound share the overflow series.
func (v *vec[T]) get(vals []string, mk func() *T) *T {
	if len(vals) != len(v.labels) {
		panic("obs: " + v.name + ": wrong number of label values")
	}
	key := seriesKey(vals)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c != nil {
		return c
	}
	if len(v.children) >= v.max {
		if v.limited != nil {
			v.limited.Inc()
		}
		if v.overflow == nil {
			v.overflow = mk()
			over := make([]string, len(v.labels))
			for i := range over {
				over[i] = OverflowLabel
			}
			okey := seriesKey(over)
			v.children[okey] = v.overflow
			v.order = append(v.order, okey)
			v.vals[okey] = over
		}
		return v.overflow
	}
	c = mk()
	// The key escapes into the long-lived maps here, so clone it off the
	// pooled builder's backing array.
	key = strings.Clone(key)
	v.children[key] = c
	v.order = append(v.order, key)
	v.vals[key] = append([]string(nil), vals...)
	return c
}

// series invokes fn for every live series in sorted key order — the
// deterministic iteration Snapshot and the OpenMetrics encoder share.
func (v *vec[T]) series(fn func(vals []string, child *T)) {
	v.mu.RLock()
	keys := append([]string(nil), v.order...)
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.mu.RLock()
		child, vals := v.children[k], v.vals[k]
		v.mu.RUnlock()
		if child != nil {
			fn(vals, child)
		}
	}
}

// len reports the number of live series (including overflow, if present).
func (v *vec[T]) len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.children)
}

// CounterVec is a family of Counters distinguished by label values, e.g.
// pii.match.hits by wire encoding. Obtain one from Registry.CounterVec.
type CounterVec struct {
	v *vec[Counter]
}

// Name reports the family name.
func (c *CounterVec) Name() string { return c.v.name }

// Labels reports the label names, in the order WithLabelValues expects.
func (c *CounterVec) Labels() []string { return append([]string(nil), c.v.labels...) }

// WithLabelValues resolves the series for a label tuple, creating it on
// first use. The returned Counter is wait-free; hot paths should resolve
// once and reuse it.
func (c *CounterVec) WithLabelValues(vals ...string) *Counter {
	return c.v.get(vals, func() *Counter { return &Counter{} })
}

// GaugeVec is a family of Gauges distinguished by label values.
type GaugeVec struct {
	v *vec[Gauge]
}

// Name reports the family name.
func (g *GaugeVec) Name() string { return g.v.name }

// Labels reports the label names, in the order WithLabelValues expects.
func (g *GaugeVec) Labels() []string { return append([]string(nil), g.v.labels...) }

// WithLabelValues resolves the series for a label tuple, creating it on
// first use.
func (g *GaugeVec) WithLabelValues(vals ...string) *Gauge {
	return g.v.get(vals, func() *Gauge { return &Gauge{} })
}

// HistogramVec is a family of Histograms distinguished by label values,
// e.g. stage latency by pipeline stage. The unit is fixed for the whole
// family. The family name excludes the unit suffix; each series' legacy
// JSON name appends it (stage + session → stage.session_ns).
type HistogramVec struct {
	v      *vec[Histogram]
	unit   string
	rollup string // guarded by v.mu; see WithRollup
}

// WithRollup names an aggregate series synthesized at snapshot time by
// merging every child's buckets — the family total under a legacy flat
// name (e.g. analysis.compute_ns over all artifacts). The merge sums raw
// bucket counts, so its quantiles are exactly what one histogram
// receiving every observation would report; the hot path records once,
// into the labeled child only. Returns the vec for chaining.
func (h *HistogramVec) WithRollup(name string) *HistogramVec {
	h.v.mu.Lock()
	h.rollup = name
	h.v.mu.Unlock()
	return h
}

// rollupName returns the configured rollup name, or "".
func (h *HistogramVec) rollupName() string {
	h.v.mu.RLock()
	defer h.v.mu.RUnlock()
	return h.rollup
}

// mergedSnapshot aggregates every child of the family into one
// HistogramSnapshot by summing bucket counts.
func (h *HistogramVec) mergedSnapshot() HistogramSnapshot {
	var children []*Histogram
	h.v.series(func(_ []string, c *Histogram) { children = append(children, c) })
	return mergeHistograms(h.unit, children)
}

// Name reports the family name (without the unit suffix).
func (h *HistogramVec) Name() string { return h.v.name }

// Unit reports the unit every series in the family records.
func (h *HistogramVec) Unit() string { return h.unit }

// Labels reports the label names, in the order WithLabelValues expects.
func (h *HistogramVec) Labels() []string { return append([]string(nil), h.v.labels...) }

// WithLabelValues resolves the series for a label tuple, creating it on
// first use.
func (h *HistogramVec) WithLabelValues(vals ...string) *Histogram {
	return h.v.get(vals, func() *Histogram { return newHistogram(h.unit) })
}

// flatName renders a series under the legacy dotted JSON naming:
// family name, one dot-joined segment per label value, and for
// histograms the unit suffix ("stage" + ["session"] + "ns" →
// "stage.session_ns"). This is what keeps /debug/metrics byte-compatible
// across the migration from suffix-labeled flat metrics.
func flatName(family string, vals []string, unit string) string {
	n := family + "." + strings.Join(vals, ".")
	if unit != "" {
		n += "_" + unit
	}
	return n
}
