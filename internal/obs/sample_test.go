package obs

import (
	"sync"
	"testing"
)

// TestReservoirExactBelowCapacity: while the stream fits, quantiles are
// exact order statistics, not estimates.
func TestReservoirExactBelowCapacity(t *testing.T) {
	r := NewReservoir(1000, 1)
	for v := int64(100); v >= 1; v-- { // reversed insertion order must not matter
		r.Observe(v)
	}
	if got := r.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}} {
		if got := r.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%.2f) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := r.Max(); got != 100 {
		t.Errorf("Max = %d, want 100", got)
	}
}

// TestReservoirSubsamplesBeyondCapacity: past the capacity the reservoir
// keeps a uniform subsample whose quantiles stay representative, and the
// seeded RNG makes two identical runs identical.
func TestReservoirSubsamplesBeyondCapacity(t *testing.T) {
	run := func() int64 {
		r := NewReservoir(256, 42)
		for v := int64(1); v <= 100_000; v++ {
			r.Observe(v)
		}
		return r.Quantile(0.5)
	}
	p50a, p50b := run(), run()
	if p50a != p50b {
		t.Fatalf("same seed, different medians: %d vs %d", p50a, p50b)
	}
	// A uniform subsample of 1..100k has a median well inside the middle
	// half; a broken algorithm R (e.g. keeping only the head) lands far
	// outside it.
	if p50a < 25_000 || p50a > 75_000 {
		t.Errorf("median of subsample = %d, implausible for uniform sampling", p50a)
	}
}

func TestReservoirZeroAndConcurrent(t *testing.T) {
	r := NewReservoir(0, 7) // clamps to capacity 1
	if got := r.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for v := int64(0); v < 1000; v++ {
				r.Observe(base + v)
			}
		}(int64(i) * 1000)
	}
	wg.Wait()
	if got := r.Count(); got != 8000 {
		t.Errorf("Count = %d, want 8000", got)
	}
}
