package obs

import (
	"math/rand"
	"sort"
	"sync"
)

// Reservoir is a bounded, uniformly sampled set of observations with
// exact quantiles over the retained sample — the complement to Histogram.
// A Histogram is wait-free and unbounded but its quantiles are log-bucket
// estimates (~2% relative error); a Reservoir keeps raw values, so its
// quantiles are exact while the stream fits the capacity and an unbiased
// uniform subsample beyond it (Vitter's algorithm R). Load drivers use it
// for gate-grade p50/p95/p99 latency, where bucket-midpoint rounding would
// eat a real regression's margin.
//
// The RNG is seeded explicitly so a replayed load run samples identically.
// Observe takes a mutex — fine for a load generator's tens of thousands of
// observations per second, not for per-byte hot paths.
type Reservoir struct {
	mu   sync.Mutex
	cap  int
	n    int64
	vals []int64
	rng  *rand.Rand
}

// NewReservoir builds a reservoir retaining up to capacity observations
// (minimum 1), subsampling uniformly beyond it.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{
		cap:  capacity,
		vals: make([]int64, 0, capacity),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Observe records one value.
func (r *Reservoir) Observe(v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, v)
		return
	}
	if j := r.rng.Int63n(r.n); j < int64(r.cap) {
		r.vals[j] = v
	}
}

// Count reports how many values were observed (not how many are retained).
func (r *Reservoir) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Quantile returns the q-th quantile (0 < q <= 1) of the retained sample,
// exact while the stream has not exceeded the capacity. Returns 0 with no
// observations.
func (r *Reservoir) Quantile(q float64) int64 {
	r.mu.Lock()
	vals := append([]int64(nil), r.vals...)
	r.mu.Unlock()
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if q <= 0 {
		return vals[0]
	}
	idx := int(q*float64(len(vals))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// Max returns the largest retained observation (0 with none).
func (r *Reservoir) Max() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var m int64
	for _, v := range r.vals {
		if v > m {
			m = v
		}
	}
	return m
}
