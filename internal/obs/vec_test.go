package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVecGetOrCreate(t *testing.T) {
	r := New()
	v := r.CounterVec("pii.match.hits", "encoding")
	if v != r.CounterVec("pii.match.hits", "encoding") {
		t.Fatal("CounterVec not idempotent")
	}
	a := v.WithLabelValues("md5")
	if a != v.WithLabelValues("md5") {
		t.Fatal("series not idempotent")
	}
	a.Add(3)
	v.WithLabelValues("hex").Inc()
	snap := r.Snapshot()
	if snap.Counters["pii.match.hits.md5"] != 3 {
		t.Fatalf("legacy flat name missing: %+v", snap.Counters)
	}
	if snap.Counters["pii.match.hits.hex"] != 1 {
		t.Fatalf("legacy flat name missing: %+v", snap.Counters)
	}
	if got := v.Labels(); len(got) != 1 || got[0] != "encoding" {
		t.Fatalf("Labels = %v", got)
	}
}

func TestVecWrongArityPanics(t *testing.T) {
	r := New()
	v := r.CounterVec("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.WithLabelValues("only-one")
}

func TestGaugeVecSnapshot(t *testing.T) {
	r := New()
	v := r.GaugeVec("shard.depth", "shard")
	v.WithLabelValues("0").Set(7)
	v.WithLabelValues("1").Set(9)
	snap := r.Snapshot()
	if snap.Gauges["shard.depth.0"] != 7 || snap.Gauges["shard.depth.1"] != 9 {
		t.Fatalf("gauge vec flat names wrong: %+v", snap.Gauges)
	}
}

func TestHistogramVecLegacyNamesAndRollup(t *testing.T) {
	r := New()
	v := r.HistogramVec("stage", "ns", "stage")
	v.WithLabelValues("session").Observe(1000)
	v.WithLabelValues("session").Observe(3000)
	v.WithLabelValues("filter").Observe(50)
	snap := r.Snapshot()
	if h := snap.Histograms["stage.session_ns"]; h.Count != 2 || h.Unit != "ns" {
		t.Fatalf("stage.session_ns = %+v", h)
	}
	if h := snap.Histograms["stage.filter_ns"]; h.Count != 1 {
		t.Fatalf("stage.filter_ns = %+v", h)
	}

	// A rollup must equal a plain histogram fed the same observations.
	v2 := r.HistogramVec("analysis.compute", "ns", "artifact").WithRollup("analysis.compute_ns")
	plain := newHistogram("ns")
	for i, id := range []string{"report", "table1", "report", "figure-1a.svg"} {
		val := int64(1000 * (i + 1))
		v2.WithLabelValues(id).Observe(val)
		plain.Observe(val)
	}
	snap = r.Snapshot()
	roll, ok := snap.Histograms["analysis.compute_ns"]
	if !ok {
		t.Fatal("rollup name missing from snapshot")
	}
	if want := plain.Snapshot(); roll != want {
		t.Fatalf("rollup = %+v, want %+v", roll, want)
	}
	if h := snap.Histograms["analysis.compute.figure-1a.svg_ns"]; h.Count != 1 {
		t.Fatalf("per-artifact series missing: %+v", h)
	}
}

// TestCounterVecCardinalityBound: beyond the per-family series bound, new
// label tuples collapse into one shared overflow series — the registry
// cannot be grown without bound by a label that mistakenly carries a
// per-flow value — and obs.cardinality_limited_total counts the collapsed
// resolutions.
func TestCounterVecCardinalityBound(t *testing.T) {
	limited := &Counter{}
	v := &CounterVec{v: newVec[Counter]("leaks", []string{"host"}, 4, limited)}
	for i := 0; i < 4; i++ {
		v.WithLabelValues(string(rune('a' + i))).Inc()
	}
	over1 := v.WithLabelValues("evil-1")
	over2 := v.WithLabelValues("evil-2")
	if over1 != over2 {
		t.Fatal("overflow tuples must share one series")
	}
	over1.Inc()
	over2.Inc()
	if got := limited.Value(); got != 2 {
		t.Fatalf("cardinality_limited = %d, want 2", got)
	}
	// 4 real series + 1 overflow, never more.
	if got := v.v.len(); got != 5 {
		t.Fatalf("series count = %d, want 5", got)
	}
	var names []string
	v.v.series(func(vals []string, c *Counter) { names = append(names, flatName("leaks", vals, "")) })
	if want := "leaks." + OverflowLabel; !strings.Contains(strings.Join(names, " "), want) {
		t.Fatalf("overflow series %q missing from %v", want, names)
	}
	// A tuple that existed before the bound still resolves to its own series.
	if v.WithLabelValues("a") == over1 {
		t.Fatal("pre-bound series collapsed into overflow")
	}
}

// TestVecConcurrent races get-or-create against Snapshot and exposition
// on all three vec kinds (run under -race via make race).
func TestVecConcurrent(t *testing.T) {
	r := New()
	const goroutines = 8
	const perG = 400
	labels := []string{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lv := labels[i%len(labels)]
				r.CounterVec("c.vec", "l").WithLabelValues(lv).Inc()
				r.GaugeVec("g.vec", "l").WithLabelValues(lv).Add(1)
				r.HistogramVec("h.vec", "ns", "l").WithLabelValues(lv).Observe(int64(i))
				if i%97 == 0 {
					_ = r.Snapshot()
					_ = r.WriteProm(discard{})
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, l := range labels {
		total += snap.Counters["c.vec."+l]
	}
	if want := int64(goroutines * perG); total != want {
		t.Fatalf("counter vec total = %d, want %d", total, want)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestUnitAndLabelConflicts(t *testing.T) {
	r := New()
	r.Histogram("lat", "ns")
	r.Histogram("lat", "bytes") // conflicting unit: kept as ns, counted
	if got := r.Histogram("lat", "ns").Unit(); got != "ns" {
		t.Fatalf("unit = %q, want first-caller ns", got)
	}
	if got := r.Counter("obs.unit_conflicts_total").Value(); got != 1 {
		t.Fatalf("unit_conflicts = %d, want 1", got)
	}
	r.HistogramVec("lat.vec", "ns", "l")
	r.HistogramVec("lat.vec", "bytes", "l")
	if got := r.Counter("obs.unit_conflicts_total").Value(); got != 2 {
		t.Fatalf("unit_conflicts = %d, want 2", got)
	}
	r.CounterVec("cv", "a")
	r.CounterVec("cv", "b")
	if got := r.Counter("obs.label_conflicts_total").Value(); got != 1 {
		t.Fatalf("label_conflicts = %d, want 1", got)
	}
}

// BenchmarkCounterVec quantifies the labeled hot path against a plain
// Counter: /resolved is the documented pattern (resolve the series once,
// Inc atomics thereafter — must be within 2x of BenchmarkCounter), and
// /lookup pays the canonical-key map read on every update.
func BenchmarkCounter(b *testing.B) {
	r := New()
	c := r.Counter("bench.plain")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterVec(b *testing.B) {
	b.Run("resolved", func(b *testing.B) {
		r := New()
		c := r.CounterVec("bench.vec", "l").WithLabelValues("x")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("lookup", func(b *testing.B) {
		r := New()
		v := r.CounterVec("bench.vec", "l")
		v.WithLabelValues("x")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.WithLabelValues("x").Inc()
		}
	})
}
