package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide namespace of metrics. Lookups are
// get-or-create: the first caller of a name allocates the metric, later
// callers (and exporters) share it. A Registry is safe for concurrent use;
// hot paths should resolve metric pointers once and reuse them.
type Registry struct {
	mu            sync.RWMutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	histograms    map[string]*Histogram
	counterVecs   map[string]*CounterVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec

	// recorder, when a Recorder has attached itself, backs the
	// /debug/metrics/series endpoint of DebugMux.
	recorder atomic.Pointer[Recorder]
}

// Default is the process-wide registry. Instrumented packages record here
// unless the caller injects a private Registry.
var Default = New()

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		counterVecs:   make(map[string]*CounterVec),
		gaugeVecs:     make(map[string]*GaugeVec),
		histogramVecs: make(map[string]*HistogramVec),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given unit label ("ns", "bytes"). The unit is fixed by the first caller;
// a later caller asking for a different unit gets the original histogram
// back, with a warning logged and obs.unit_conflicts_total incremented —
// two call sites disagreeing about a metric's unit is an instrumentation
// bug that silent precedence used to hide.
func (r *Registry) Histogram(name, unit string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h == nil {
		r.mu.Lock()
		if h = r.histograms[name]; h == nil {
			h = newHistogram(unit)
			r.histograms[name] = h
		}
		r.mu.Unlock()
	}
	if h.unit != unit {
		r.unitConflict(name, h.unit, unit)
	}
	return h
}

// unitConflict records a histogram registered twice with disagreeing
// units. The counter lives in the same registry, so the conflict is
// visible in the snapshot it corrupts.
func (r *Registry) unitConflict(name, have, want string) {
	r.Counter("obs.unit_conflicts_total").Inc()
	slog.Warn("obs: histogram unit conflict; keeping first unit",
		"metric", name, "unit", have, "conflicting_unit", want)
}

// CounterVec returns the named counter family with the given label
// dimensions, creating it on first use. The label set is fixed by the
// first caller; a later caller asking for different labels gets the
// original family back, with a warning logged and
// obs.label_conflicts_total incremented.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	r.mu.RLock()
	v := r.counterVecs[name]
	r.mu.RUnlock()
	if v == nil {
		limited := r.Counter("obs.cardinality_limited_total")
		r.mu.Lock()
		if v = r.counterVecs[name]; v == nil {
			v = &CounterVec{v: newVec[Counter](name, labels, 0, limited)}
			r.counterVecs[name] = v
		}
		r.mu.Unlock()
	}
	r.checkLabels(name, v.v.labels, labels)
	return v
}

// GaugeVec returns the named gauge family with the given label dimensions,
// creating it on first use.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	r.mu.RLock()
	v := r.gaugeVecs[name]
	r.mu.RUnlock()
	if v == nil {
		limited := r.Counter("obs.cardinality_limited_total")
		r.mu.Lock()
		if v = r.gaugeVecs[name]; v == nil {
			v = &GaugeVec{v: newVec[Gauge](name, labels, 0, limited)}
			r.gaugeVecs[name] = v
		}
		r.mu.Unlock()
	}
	r.checkLabels(name, v.v.labels, labels)
	return v
}

// HistogramVec returns the named histogram family with the given unit and
// label dimensions, creating it on first use. Unit conflicts are handled
// like Registry.Histogram's.
func (r *Registry) HistogramVec(name, unit string, labels ...string) *HistogramVec {
	r.mu.RLock()
	v := r.histogramVecs[name]
	r.mu.RUnlock()
	if v == nil {
		limited := r.Counter("obs.cardinality_limited_total")
		r.mu.Lock()
		if v = r.histogramVecs[name]; v == nil {
			v = &HistogramVec{v: newVec[Histogram](name, labels, 0, limited), unit: unit}
			r.histogramVecs[name] = v
		}
		r.mu.Unlock()
	}
	if v.unit != unit {
		r.unitConflict(name, v.unit, unit)
	}
	r.checkLabels(name, v.v.labels, labels)
	return v
}

// checkLabels flags a vec family resolved twice with disagreeing label
// names — like a unit conflict, an instrumentation bug worth surfacing.
func (r *Registry) checkLabels(name string, have, want []string) {
	if len(have) == len(want) {
		same := true
		for i := range have {
			if have[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	r.Counter("obs.label_conflicts_total").Inc()
	slog.Warn("obs: vec label conflict; keeping first label set",
		"metric", name, "labels", strings.Join(have, ","),
		"conflicting_labels", strings.Join(want, ","))
}

// Snapshot is a point-in-time export of every metric in a registry.
// Labeled series fold into the same flat maps under their legacy dotted
// names (family + "." + label values, histograms with the unit suffix),
// so the JSON wire format is unchanged by the vec migration.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
// Concurrent updates during the snapshot may be partially reflected.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	cvecs := make([]*CounterVec, 0, len(r.counterVecs))
	for _, v := range r.counterVecs {
		cvecs = append(cvecs, v)
	}
	gvecs := make([]*GaugeVec, 0, len(r.gaugeVecs))
	for _, v := range r.gaugeVecs {
		gvecs = append(gvecs, v)
	}
	hvecs := make([]*HistogramVec, 0, len(r.histogramVecs))
	for _, v := range r.histogramVecs {
		hvecs = append(hvecs, v)
	}
	r.mu.RUnlock()
	for _, v := range cvecs {
		v.v.series(func(vals []string, c *Counter) {
			s.Counters[flatName(v.v.name, vals, "")] = c.Value()
		})
	}
	for _, v := range gvecs {
		v.v.series(func(vals []string, g *Gauge) {
			s.Gauges[flatName(v.v.name, vals, "")] = g.Value()
		})
	}
	for _, v := range hvecs {
		v.v.series(func(vals []string, h *Histogram) {
			s.Histograms[flatName(v.v.name, vals, v.unit)] = h.Snapshot()
		})
		if name := v.rollupName(); name != "" {
			s.Histograms[name] = v.mergedSnapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON with sorted keys — the
// /debug/metrics wire format documented in docs/metrics.md.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Handler returns an http.Handler serving the snapshot. The format is
// negotiated: ?format=prom (or an Accept header preferring
// text/plain / application/openmetrics-text) selects the OpenMetrics
// text exposition; the default remains the legacy JSON snapshot.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch negotiateFormat(req) {
		case "openmetrics":
			w.Header().Set("Content-Type", openMetricsContentType)
			_ = r.WriteOpenMetrics(w)
		case "prom":
			w.Header().Set("Content-Type", promContentType)
			_ = r.WriteProm(w)
		default:
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = r.WriteJSON(w)
		}
	})
}

// negotiateFormat picks the exposition format for one request: an explicit
// ?format= wins; otherwise the Accept header is consulted; JSON is the
// backward-compatible default.
func negotiateFormat(req *http.Request) string {
	switch req.URL.Query().Get("format") {
	case "prom", "prometheus":
		return "prom"
	case "openmetrics":
		return "openmetrics"
	case "json":
		return "json"
	}
	accept := req.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/openmetrics-text"):
		return "openmetrics"
	case strings.Contains(accept, "text/plain"):
		return "prom"
	}
	return "json"
}

// Recorder returns the Recorder attached to this registry, or nil if none
// is running. NewRecorder attaches itself.
func (r *Registry) Recorder() *Recorder { return r.recorder.Load() }

// DebugMux returns a mux exposing the registry at /debug/metrics (JSON,
// Prometheus, or OpenMetrics by content negotiation), the windowed
// time-series view at /debug/metrics/series (404 until a Recorder is
// attached), and the runtime profiler at /debug/pprof/ — the
// observability surface the cmd binaries mount.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", r.Handler())
	mux.HandleFunc("/debug/metrics/series", func(w http.ResponseWriter, req *http.Request) {
		rec := r.Recorder()
		if rec == nil {
			http.Error(w, "no recorder attached (start one with obs.NewRecorder)", http.StatusNotFound)
			return
		}
		rec.Handler().ServeHTTP(w, req)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StageTable renders every histogram whose name starts with prefix as an
// aligned text table, one row per stage, with nanosecond histograms
// formatted as durations. This is the "final timing table" avwrun
// -progress prints after a campaign.
func (s Snapshot) StageTable(prefix string) string {
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return formatStageTable(prefix, names, s.Histograms)
}
