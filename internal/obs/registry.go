package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// Registry is a process-wide namespace of metrics. Lookups are
// get-or-create: the first caller of a name allocates the metric, later
// callers (and exporters) share it. A Registry is safe for concurrent use;
// hot paths should resolve metric pointers once and reuse them.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Default is the process-wide registry. Instrumented packages record here
// unless the caller injects a private Registry.
var Default = New()

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given unit label ("ns", "bytes"). The unit is fixed by the first caller.
func (r *Registry) Histogram(name, unit string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(unit)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time export of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
// Concurrent updates during the snapshot may be partially reflected.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON with sorted keys — the
// /debug/metrics wire format documented in docs/metrics.md.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Handler returns an http.Handler serving the JSON snapshot.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// DebugMux returns a mux exposing the registry at /debug/metrics and the
// runtime profiler at /debug/pprof/ — the observability surface the cmd
// binaries mount.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StageTable renders every histogram whose name starts with prefix as an
// aligned text table, one row per stage, with nanosecond histograms
// formatted as durations. This is the "final timing table" avwrun
// -progress prints after a campaign.
func (s Snapshot) StageTable(prefix string) string {
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return formatStageTable(prefix, names, s.Histograms)
}
