package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecorderSeries(t *testing.T) {
	r := New()
	c := r.Counter("work.items_total")
	h := r.Histogram("work.latency_ns", "ns")
	rec := NewRecorder(r, RecorderOptions{Interval: time.Millisecond})
	if r.Recorder() != rec {
		t.Fatal("NewRecorder did not attach to the registry")
	}

	c.Add(10)
	h.Observe(1000)
	rec.Tick()
	time.Sleep(20 * time.Millisecond)
	c.Add(40)
	h.Observe(3000)
	rec.Tick()

	s := rec.Series()
	if s.Samples != 2 {
		t.Fatalf("samples = %d, want 2", s.Samples)
	}
	if len(s.Windows) != 3 {
		t.Fatalf("windows = %v, want 3 defaults", s.Windows)
	}
	cs := s.Counters["work.items_total"]
	if cs.Value != 50 {
		t.Fatalf("counter value = %d, want 50", cs.Value)
	}
	// Both ticks are inside every default window, so each rate is computed
	// over the same partial window: delta 40 over the real elapsed time.
	for _, w := range s.Windows {
		rate, ok := cs.Rates[w]
		if !ok {
			t.Fatalf("no rate for window %s: %+v", w, cs.Rates)
		}
		if rate <= 0 || rate > 40/0.02+1 {
			t.Errorf("window %s rate = %v, want positive and bounded by delta/sleep", w, rate)
		}
	}
	hs := s.Histograms["work.latency_ns"]
	if hs.Count != 2 {
		t.Fatalf("histogram count = %d, want 2", hs.Count)
	}
	if mean := hs.Mean["10s"]; mean != 3000 {
		t.Errorf("window mean = %v, want 3000 (only the second observation is in the window delta)", mean)
	}
	// The recorder samples the Go runtime into gauges on every tick.
	if g := s.Gauges["runtime.goroutines"]; g <= 0 {
		t.Errorf("runtime.goroutines = %d, want > 0", g)
	}
	if g := s.Gauges["runtime.heap_bytes"]; g <= 0 {
		t.Errorf("runtime.heap_bytes = %d, want > 0", g)
	}
}

func TestRecorderRingBounded(t *testing.T) {
	r := New()
	rec := NewRecorder(r, RecorderOptions{Interval: time.Millisecond, Capacity: 4})
	for i := 0; i < 10; i++ {
		rec.Tick()
	}
	if got := rec.Series().Samples; got != 4 {
		t.Fatalf("samples = %d, want ring capacity 4", got)
	}
}

func TestBaseline(t *testing.T) {
	base := time.Unix(1000, 0)
	mk := func(secs ...int) []tickSample {
		out := make([]tickSample, len(secs))
		for i, s := range secs {
			out[i] = tickSample{at: base.Add(time.Duration(s) * time.Second)}
		}
		return out
	}
	now := base.Add(10 * time.Second)

	if _, ok := baseline(mk(10), now, time.Minute); ok {
		t.Error("single tick must report no baseline")
	}
	// Newest tick that is at least the window old.
	ticks := mk(0, 4, 8, 10)
	if got, _ := baseline(ticks, now, 5*time.Second); !got.at.Equal(base.Add(4 * time.Second)) {
		t.Errorf("baseline(5s) = t+%v, want t+4s", got.at.Sub(base))
	}
	// Window longer than the ring: fall back to the oldest (partial window).
	if got, _ := baseline(ticks, now, time.Hour); !got.at.Equal(base) {
		t.Errorf("baseline(1h) = t+%v, want oldest", got.at.Sub(base))
	}
}

func TestRecorderHandlerViaDebugMux(t *testing.T) {
	r := New()
	r.Counter("x_total").Add(5)
	rec := NewRecorder(r, RecorderOptions{Interval: time.Millisecond})
	rec.Tick()

	mux := DebugMux(r)
	req := httptest.NewRequest("GET", "/debug/metrics/series", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("series = %d, want 200", w.Code)
	}
	var s SeriesSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &s); err != nil {
		t.Fatalf("series JSON: %v", err)
	}
	if s.Counters["x_total"].Value != 5 {
		t.Fatalf("series counters = %+v", s.Counters)
	}
	if s.IntervalS != 0.001 {
		t.Errorf("interval_s = %v, want 0.001", s.IntervalS)
	}
}

func TestWatchTripAndRecover(t *testing.T) {
	r := New()
	g := r.Gauge("queue.depth")
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	rec := NewRecorder(r, RecorderOptions{
		Interval: time.Millisecond,
		Watches:  []Watch{{Name: "queue-deep", Gauge: "queue.depth", Op: ">", Threshold: 100}},
		Logger:   logger,
	})
	trips := r.Counter("obs.watch.trips_total")

	g.Set(50)
	rec.Tick()
	if trips.Value() != 0 {
		t.Fatal("tripped below threshold")
	}
	g.Set(150)
	rec.Tick()
	if trips.Value() != 1 {
		t.Fatalf("trips = %d after crossing, want 1", trips.Value())
	}
	if !strings.Contains(logBuf.String(), "watch tripped") || !strings.Contains(logBuf.String(), "queue-deep") {
		t.Fatalf("no structured trip warning logged: %s", logBuf.String())
	}
	// Staying tripped is silent: the transition fired, not the level.
	logBuf.Reset()
	g.Set(200)
	rec.Tick()
	if trips.Value() != 1 {
		t.Fatalf("trips = %d while staying tripped, want 1", trips.Value())
	}
	if logBuf.Len() != 0 {
		t.Fatalf("logged while staying tripped: %s", logBuf.String())
	}
	// Recovery logs at info; a later re-cross trips again.
	g.Set(50)
	rec.Tick()
	if !strings.Contains(logBuf.String(), "watch recovered") {
		t.Fatalf("no recovery line: %s", logBuf.String())
	}
	g.Set(150)
	rec.Tick()
	if trips.Value() != 2 {
		t.Fatalf("trips = %d after re-cross, want 2", trips.Value())
	}
}

func TestWatchRateAndQuantile(t *testing.T) {
	r := New()
	c := r.Counter("errs_total")
	h := r.Histogram("lat_ns", "ns")
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	rec := NewRecorder(r, RecorderOptions{
		Interval: time.Millisecond,
		Watches: []Watch{
			{Name: "err-rate", Rate: "errs_total", Window: time.Minute, Threshold: 10},
			{Name: "slow-p99", Quantile: "lat_ns", Q: "p99", Threshold: 5000},
		},
		Logger: logger,
	})
	trips := r.Counter("obs.watch.trips_total")

	rec.Tick()
	time.Sleep(10 * time.Millisecond)
	// ~100 err/s over the partial window (threshold 10/s) and a p99 well
	// above 5000ns: both rules trip on the second tick.
	c.Add(1000)
	h.Observe(1_000_000)
	rec.Tick()
	if trips.Value() != 2 {
		t.Fatalf("trips = %d, want both rules tripped; log: %s", trips.Value(), logBuf.String())
	}
}

func TestFmtWindow(t *testing.T) {
	cases := map[time.Duration]string{
		10 * time.Second: "10s",
		time.Minute:      "1m",
		5 * time.Minute:  "5m",
		90 * time.Second: "90s",
	}
	for d, want := range cases {
		if got := fmtWindow(d); got != want {
			t.Errorf("fmtWindow(%v) = %q, want %q", d, got, want)
		}
	}
}
