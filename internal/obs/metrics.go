package obs

import "sync/atomic"

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are safe for concurrent callers and wait-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative n is ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (in-flight experiments, queue depth).
// Unlike a Counter it can move in both directions. The zero value is ready
// to use; all methods are safe for concurrent callers and wait-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative n decreases it).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }
