package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime/metrics"
	"sync"
	"time"
)

// Recorder turns the registry's cumulative metrics into time series: it
// self-scrapes a Snapshot on a ticker into a fixed-size ring and answers
// windowed deltas and per-second rates over it (10s/1m/5m by default) —
// "what is the leak rate right now", not "how many leaks since boot".
// Each tick it also samples the Go runtime (goroutines, heap, GC cycles
// via runtime/metrics) into runtime.* gauges, so one scrape carries both
// workload and process health. The series view is served as JSON at
// /debug/metrics/series by DebugMux once a Recorder attaches to the
// registry, and Watch rules are evaluated against every tick.
//
// Memory is bounded by construction: Capacity ticks of one Snapshot each
// (the ring never grows), and the scrape itself is read-only against the
// wait-free metric cells.
type Recorder struct {
	reg      *Registry
	interval time.Duration
	windows  []time.Duration
	logger   *slog.Logger
	trips    *Counter
	watches  []*watchState

	runtimeSamples []metrics.Sample
	runtimeGauges  []*Gauge

	mu    sync.RWMutex
	ring  []tickSample
	next  int
	count int
}

// tickSample is one scrape: when it happened and what the registry held.
type tickSample struct {
	at   time.Time
	snap Snapshot
}

// RecorderOptions configure a Recorder.
type RecorderOptions struct {
	// Interval is the self-scrape cadence. Default 1s.
	Interval time.Duration
	// Capacity is the ring size in ticks. Default covers the longest
	// window plus one tick (301 at the defaults).
	Capacity int
	// Windows are the rate windows exposed by Series. Default 10s, 1m, 5m.
	Windows []time.Duration
	// Watches are threshold rules evaluated on every tick.
	Watches []Watch
	// Logger receives watch trip/recover lines. Nil uses slog.Default.
	Logger *slog.Logger
}

// runtimeMetricNames maps runtime/metrics keys onto the runtime.* gauges
// every recorder maintains (documented in docs/metrics.md).
var runtimeMetricNames = []struct{ key, gauge string }{
	{"/sched/goroutines:goroutines", "runtime.goroutines"},
	{"/memory/classes/heap/objects:bytes", "runtime.heap_bytes"},
	{"/gc/heap/allocs:bytes", "runtime.alloc_bytes"},
	{"/gc/cycles/total:gc-cycles", "runtime.gc_cycles"},
}

// NewRecorder builds a recorder over reg and attaches it, so DebugMux(reg)
// starts serving /debug/metrics/series. Call Run to start the ticker (or
// Tick manually, e.g. from tests).
func NewRecorder(reg *Registry, opts RecorderOptions) *Recorder {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if len(opts.Windows) == 0 {
		opts.Windows = []time.Duration{10 * time.Second, time.Minute, 5 * time.Minute}
	}
	if opts.Capacity <= 0 {
		longest := opts.Windows[0]
		for _, w := range opts.Windows {
			if w > longest {
				longest = w
			}
		}
		opts.Capacity = int(longest/opts.Interval) + 1
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	rec := &Recorder{
		reg:      reg,
		interval: opts.Interval,
		windows:  opts.Windows,
		logger:   opts.Logger,
		trips:    reg.Counter("obs.watch.trips_total"),
		ring:     make([]tickSample, opts.Capacity),
	}
	for _, w := range opts.Watches {
		rec.watches = append(rec.watches, &watchState{Watch: w.withDefaults()})
	}
	for _, rm := range runtimeMetricNames {
		rec.runtimeSamples = append(rec.runtimeSamples, metrics.Sample{Name: rm.key})
		rec.runtimeGauges = append(rec.runtimeGauges, reg.Gauge(rm.gauge))
	}
	reg.recorder.Store(rec)
	return rec
}

// Interval reports the scrape cadence.
func (rec *Recorder) Interval() time.Duration { return rec.interval }

// Run scrapes on the configured interval until ctx is canceled.
func (rec *Recorder) Run(ctx context.Context) {
	t := time.NewTicker(rec.interval)
	defer t.Stop()
	rec.Tick()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rec.Tick()
		}
	}
}

// Tick performs one scrape: runtime sampling, a registry snapshot into
// the ring, and watch evaluation.
func (rec *Recorder) Tick() {
	rec.sampleRuntime()
	now := time.Now()
	snap := rec.reg.Snapshot()
	rec.mu.Lock()
	rec.ring[rec.next] = tickSample{at: now, snap: snap}
	rec.next = (rec.next + 1) % len(rec.ring)
	if rec.count < len(rec.ring) {
		rec.count++
	}
	rec.mu.Unlock()
	rec.evalWatches()
}

// sampleRuntime reads the Go runtime metrics into the runtime.* gauges.
func (rec *Recorder) sampleRuntime() {
	metrics.Read(rec.runtimeSamples)
	for i, s := range rec.runtimeSamples {
		if s.Value.Kind() != metrics.KindUint64 {
			continue // metric not supported by this runtime build
		}
		v := s.Value.Uint64()
		if v > math.MaxInt64 {
			v = math.MaxInt64
		}
		rec.runtimeGauges[i].Set(int64(v))
	}
}

// ticks returns the held samples, oldest first.
func (rec *Recorder) ticks() []tickSample {
	rec.mu.RLock()
	defer rec.mu.RUnlock()
	out := make([]tickSample, 0, rec.count)
	start := rec.next - rec.count
	if start < 0 {
		start += len(rec.ring)
	}
	for i := 0; i < rec.count; i++ {
		out = append(out, rec.ring[(start+i)%len(rec.ring)])
	}
	return out
}

// CounterSeries is the windowed view of one counter.
type CounterSeries struct {
	Value int64              `json:"value"`
	Rates map[string]float64 `json:"rates_per_s,omitempty"`
}

// HistogramSeries is the windowed view of one histogram: the cumulative
// snapshot plus observation rates and windowed mean values.
type HistogramSeries struct {
	HistogramSnapshot
	Rates map[string]float64 `json:"rates_per_s,omitempty"`
	Mean  map[string]float64 `json:"window_mean,omitempty"`
}

// SeriesSnapshot is the /debug/metrics/series wire format: the latest
// cumulative values joined with per-window rates computed from the ring.
type SeriesSnapshot struct {
	At         time.Time                  `json:"at"`
	IntervalS  float64                    `json:"interval_s"`
	Windows    []string                   `json:"windows"`
	Samples    int                        `json:"samples"`
	Counters   map[string]CounterSeries   `json:"counters"`
	Gauges     map[string]int64           `json:"gauges"`
	Histograms map[string]HistogramSeries `json:"histograms"`
}

// Series computes the windowed view from the ring. With fewer than two
// ticks the rates maps are empty; the cumulative values still serve.
func (rec *Recorder) Series() SeriesSnapshot {
	ticks := rec.ticks()
	out := SeriesSnapshot{
		IntervalS:  rec.interval.Seconds(),
		Samples:    len(ticks),
		Counters:   make(map[string]CounterSeries),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSeries),
	}
	for _, w := range rec.windows {
		out.Windows = append(out.Windows, fmtWindow(w))
	}
	if len(ticks) == 0 {
		return out
	}
	cur := ticks[len(ticks)-1]
	out.At = cur.at
	for name, v := range cur.snap.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range cur.snap.Counters {
		cs := CounterSeries{Value: v, Rates: make(map[string]float64)}
		for _, w := range rec.windows {
			then, ok := baseline(ticks, cur.at, w)
			if !ok {
				continue
			}
			elapsed := cur.at.Sub(then.at).Seconds()
			if elapsed <= 0 {
				continue
			}
			cs.Rates[fmtWindow(w)] = float64(v-then.snap.Counters[name]) / elapsed
		}
		out.Counters[name] = cs
	}
	for name, h := range cur.snap.Histograms {
		hs := HistogramSeries{
			HistogramSnapshot: h,
			Rates:             make(map[string]float64),
			Mean:              make(map[string]float64),
		}
		for _, w := range rec.windows {
			then, ok := baseline(ticks, cur.at, w)
			if !ok {
				continue
			}
			elapsed := cur.at.Sub(then.at).Seconds()
			if elapsed <= 0 {
				continue
			}
			dc := h.Count - then.snap.Histograms[name].Count
			hs.Rates[fmtWindow(w)] = float64(dc) / elapsed
			if dc > 0 {
				hs.Mean[fmtWindow(w)] = float64(h.Sum-then.snap.Histograms[name].Sum) / float64(dc)
			}
		}
		out.Histograms[name] = hs
	}
	return out
}

// baseline picks the comparison tick for a window: the newest tick at
// least window old, or the oldest tick held (a partial window — the rate
// is still computed over the true elapsed time). Reports false when no
// earlier tick exists.
func baseline(ticks []tickSample, now time.Time, window time.Duration) (tickSample, bool) {
	if len(ticks) < 2 {
		return tickSample{}, false
	}
	cutoff := now.Add(-window)
	best := ticks[0]
	for _, t := range ticks[:len(ticks)-1] {
		if t.at.After(cutoff) {
			break
		}
		best = t
	}
	return best, true
}

// Handler serves the series view as JSON.
func (rec *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rec.Series())
	})
}

// fmtWindow renders a window duration compactly ("10s", "1m", "5m").
func fmtWindow(d time.Duration) string {
	if d >= time.Minute && d%time.Minute == 0 {
		return fmt.Sprintf("%dm", int(d.Minutes()))
	}
	return fmt.Sprintf("%ds", int(math.Round(d.Seconds())))
}
