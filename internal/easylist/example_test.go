package easylist_test

import (
	"fmt"

	"appvsweb/internal/easylist"
)

// Parse compiles Adblock-syntax rules; Match applies them to requests the
// way the paper labels A&A destinations.
func ExampleParse() {
	list, err := easylist.Parse(`
! ads and trackers
||ads.example^
/banner/*$third-party
@@||ads.example/acceptable/
`)
	if err != nil {
		panic(err)
	}
	reqs := []easylist.Request{
		{URL: "http://ads.example/pixel", Host: "ads.example", ThirdParty: true},
		{URL: "http://cdn.example/banner/x.gif", Host: "cdn.example", ThirdParty: true},
		{URL: "http://cdn.example/banner/x.gif", Host: "cdn.example", ThirdParty: false},
		{URL: "http://ads.example/acceptable/a.js", Host: "ads.example", ThirdParty: true},
	}
	for _, r := range reqs {
		_, blocked := list.Match(r)
		fmt.Printf("%-38s third-party=%-5v blocked=%v\n", r.URL, r.ThirdParty, blocked)
	}
	// Output:
	// http://ads.example/pixel               third-party=true  blocked=true
	// http://cdn.example/banner/x.gif        third-party=true  blocked=true
	// http://cdn.example/banner/x.gif        third-party=false blocked=false
	// http://ads.example/acceptable/a.js     third-party=true  blocked=false
}

// MatchHost is the categorizer's question: does this destination belong to
// the advertising & analytics ecosystem?
func ExampleList_MatchHost() {
	list := easylist.Bundled()
	fmt.Println(list.MatchHost("pixel.criteo-sim.example"))
	fmt.Println(list.MatchHost("api.weather-sim.example"))
	// Output:
	// true
	// false
}
