package easylist

import (
	"strings"
	"sync"
	"sync/atomic"

	"appvsweb/internal/obs"
)

// HostCache memoizes host → A&A rule verdicts (docs/performance.md). A
// campaign probes the same handful of destination hosts thousands of times
// — every flow re-asks "is this host advertising & analytics?" — while the
// underlying List match walks host suffixes and rule patterns each time.
// The cache makes repeat classifications one lock-free map read.
//
// Hosts are normalized (lowercased) exactly once, on the way into the
// cache; the inner match path never re-folds. Verdicts live in a sync.Map
// — the workload is read-mostly with stable keys, its fast path — and the
// resident count is bounded: past the bound, each insert evicts an
// arbitrary resident entry, so an adversarial stream of unique hosts
// costs evictions, never unbounded memory.
//
// Hit/miss/eviction counts are registered in internal/obs
// (easylist.hostcache.*, docs/metrics.md); per-flow cache outcomes surface
// in flow.categorize trace events via the domains.Categorizer layer above.
type HostCache struct {
	list       *List
	maxEntries int
	verdicts   sync.Map // lowercased host → hostVerdict
	count      atomic.Int64

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// DefaultHostCacheSize bounds a HostCache when no size is given: generous
// for a 50-service campaign (a few hundred distinct hosts) yet small
// enough that even a fully adversarial host stream stays in the megabytes.
const DefaultHostCacheSize = 4096

type hostVerdict struct {
	rule *Rule
	ok   bool
}

// NewHostCache wraps a compiled list in a verdict cache holding at most
// maxEntries hosts (DefaultHostCacheSize if <= 0).
func NewHostCache(l *List, maxEntries int) *HostCache {
	if maxEntries <= 0 {
		maxEntries = DefaultHostCacheSize
	}
	return &HostCache{
		list:       l,
		maxEntries: maxEntries,
		hits:       obs.Default.Counter("easylist.hostcache.hits_total"),
		misses:     obs.Default.Counter("easylist.hostcache.misses_total"),
		evictions:  obs.Default.Counter("easylist.hostcache.evictions_total"),
	}
}

// MatchHost is List.MatchHost through the cache.
func (hc *HostCache) MatchHost(host string) bool {
	_, ok := hc.MatchHostRule(host)
	return ok
}

// MatchHostRule is List.MatchHostRule through the cache: the verdict and
// attributed rule for a host, computed at most once per resident entry.
// Mixed-case hosts share the entry of their lowercase form.
func (hc *HostCache) MatchHostRule(host string) (*Rule, bool) {
	h := strings.ToLower(host)
	if v, ok := hc.verdicts.Load(h); ok {
		hc.hits.Inc()
		ve := v.(hostVerdict)
		return ve.rule, ve.ok
	}
	hc.misses.Inc()

	// Compute outside any lock: list matching is read-only and may be
	// slow; concurrent misses on the same host do duplicate work but
	// reach the same verdict.
	rule, ok := hc.list.matchHostFolded(h)

	if _, loaded := hc.verdicts.LoadOrStore(h, hostVerdict{rule, ok}); !loaded {
		if hc.count.Add(1) > int64(hc.maxEntries) {
			hc.evictOne(h)
		}
	}
	return rule, ok
}

// evictOne removes one arbitrary resident entry other than keep. Bounding
// by "evict on over-full insert" keeps the count within one concurrent
// burst of the limit without a global lock.
func (hc *HostCache) evictOne(keep string) {
	hc.verdicts.Range(func(k, _ any) bool {
		if k.(string) == keep {
			return true // pick any other victim
		}
		hc.verdicts.Delete(k)
		hc.count.Add(-1)
		hc.evictions.Inc()
		return false
	})
}

// Len reports resident entries.
func (hc *HostCache) Len() int { return int(hc.count.Load()) }

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

// Stats snapshots the process-wide hostcache counters plus this cache's
// resident size.
func (hc *HostCache) Stats() CacheStats {
	return CacheStats{
		Hits:      hc.hits.Value(),
		Misses:    hc.misses.Value(),
		Evictions: hc.evictions.Value(),
		Entries:   hc.Len(),
	}
}
