package easylist

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// cacheProbeHosts returns a mix of hosts the bundled list blocks and
// hosts it does not.
func cacheProbeHosts(t testing.TB) []string {
	list := Bundled()
	var hosts []string
	for _, name := range AllAANames() {
		hosts = append(hosts, "cdn."+name+"-sim.example")
	}
	hosts = append(hosts,
		"www.weathernow-sim.example",
		"api.examplebank.example",
		"static.news-sim.example.",
	)
	blocked := 0
	for _, h := range hosts {
		if list.MatchHost(h) {
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatal("no probe host is blocked by the bundled list")
	}
	return hosts
}

// TestHostCacheEquivalence: the cached classifier must agree with the
// uncached List on verdict and attributed rule, on first and repeat calls.
func TestHostCacheEquivalence(t *testing.T) {
	list := Bundled()
	hc := NewHostCache(list, 0)
	for round := 0; round < 3; round++ {
		for _, h := range cacheProbeHosts(t) {
			wantRule, wantOK := list.MatchHostRule(h)
			gotRule, gotOK := hc.MatchHostRule(h)
			if gotOK != wantOK || gotRule != wantRule {
				t.Fatalf("round %d, host %q: cache (%v,%v) != list (%v,%v)",
					round, h, gotRule, gotOK, wantRule, wantOK)
			}
		}
	}
}

// TestHostCacheMixedCase: normalization is hoisted into the cached path —
// a mixed-case host must classify identically to its lowercase form and
// share its cache entry (the second lookup is a hit, not a recompute).
func TestHostCacheMixedCase(t *testing.T) {
	list := Bundled()
	name := AllAANames()[0]
	lower := "cdn." + name + "-sim.example"
	mixed := "CDN." + strings.ToUpper(name) + "-Sim.Example"
	if !list.MatchHost(lower) {
		t.Fatalf("%q unexpectedly not blocked", lower)
	}

	hc := NewHostCache(list, 0)
	before := hc.Stats()
	rLower, okLower := hc.MatchHostRule(lower)
	rMixed, okMixed := hc.MatchHostRule(mixed)
	after := hc.Stats()

	if !okLower || !okMixed || rLower != rMixed {
		t.Fatalf("mixed-case divergence: lower=(%v,%v) mixed=(%v,%v)", rLower, okLower, rMixed, okMixed)
	}
	if hits := after.Hits - before.Hits; hits != 1 {
		t.Errorf("mixed-case lookup missed the cache: hits delta = %d, want 1", hits)
	}
	if misses := after.Misses - before.Misses; misses != 1 {
		t.Errorf("misses delta = %d, want 1 (only the first lookup computes)", misses)
	}
	if n := hc.Len(); n != 1 {
		t.Errorf("entries = %d, want 1 (both casings share one entry)", n)
	}
}

// TestHostCacheBounded: an adversarial stream of unique hosts must never
// grow the cache past its configured bound — it pays evictions instead.
func TestHostCacheBounded(t *testing.T) {
	const maxEntries = 64
	hc := NewHostCache(Bundled(), maxEntries)
	before := hc.Stats()
	for i := 0; i < maxEntries*10; i++ {
		hc.MatchHost(fmt.Sprintf("h%d.attacker.example", i))
	}
	after := hc.Stats()
	if n := hc.Len(); n > maxEntries {
		t.Fatalf("cache grew to %d entries, bound is %d", n, maxEntries)
	}
	if after.Evictions == before.Evictions {
		t.Error("expected evictions under an over-capacity host stream")
	}
	// Verdicts must stay correct even while evicting.
	name := AllAANames()[0]
	if !hc.MatchHost("cdn." + name + "-sim.example") {
		t.Error("blocked host misclassified after eviction churn")
	}
}

// TestHostCacheConcurrent hammers the cache from many goroutines (run
// under -race); every verdict must match the uncached list.
func TestHostCacheConcurrent(t *testing.T) {
	list := Bundled()
	hosts := cacheProbeHosts(t)
	want := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		want[h] = list.MatchHost(h)
	}
	// Small bound forces concurrent evictions too.
	hc := NewHostCache(list, 8)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := hosts[(g+i)%len(hosts)]
				if got := hc.MatchHost(h); got != want[h] {
					select {
					case errs <- fmt.Sprintf("%q: got %v, want %v", h, got, want[h]):
					default:
					}
				}
				// Interleave unique hosts to churn evictions.
				hc.MatchHost(fmt.Sprintf("g%d-i%d.example", g, i))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
