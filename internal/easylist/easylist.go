// Package easylist implements the Adblock Plus filter syntax used by
// EasyList and the matcher the paper uses to label third-party flows as
// advertising & analytics (§3.2 "Domain Categorization": "we further
// categorize them as advertisers or analytics by comparing the destination
// domain to EasyList").
//
// Supported syntax: `||` domain anchors, `|` start/end anchors, `*`
// wildcards, `^` separator placeholders, `@@` exception rules,
// `$third-party` / `$~third-party`, `$domain=a|~b` option filters, and `!`
// comments. Element-hiding rules (`##`, `#@#`) are parsed and ignored, as
// they do not affect network-flow classification.
package easylist

import (
	"fmt"
	"strings"
)

// Rule is one parsed network filter.
type Rule struct {
	Raw          string
	Exception    bool // @@ rule
	DomainAnchor bool // ||
	StartAnchor  bool // leading |
	EndAnchor    bool // trailing |
	Pattern      string

	// Options (after $).
	ThirdParty      *bool    // nil: unset; true: $third-party; false: $~third-party
	Domains         []string // $domain= includes (eTLD+1 compared by suffix)
	ExcludedDomains []string // $domain= excludes (~)
	ResourceTypes   []string // script, image, ... (recorded, not enforced)
}

// Request carries the flow attributes the matcher needs.
type Request struct {
	URL        string // full URL, e.g. "https://ads.x.example/pixel?u=1"
	Host       string // destination host
	OriginHost string // the page/app first-party host ("" if unknown)
	ThirdParty bool   // destination is third-party relative to origin
}

// List is a compiled filter list.
type List struct {
	block      []*Rule
	except     []*Rule
	hostIndex  map[string][]*Rule // literal-host domain-anchored block rules
	exceptIdx  map[string][]*Rule
	numIgnored int // element-hiding and unsupported rules
}

// Parse compiles a filter list from its text form. Unsupported cosmetic
// rules are counted but not errors; genuinely malformed network rules are.
func Parse(text string) (*List, error) {
	l := &List{
		hostIndex: make(map[string][]*Rule),
		exceptIdx: make(map[string][]*Rule),
	}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "["):
			continue
		case strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#"):
			l.numIgnored++
			continue
		}
		r, err := parseRule(line)
		if err != nil {
			return nil, fmt.Errorf("easylist: line %d: %w", lineNo+1, err)
		}
		l.add(r)
	}
	return l, nil
}

// MustParse is Parse that panics on error, for compiled-in lists.
func MustParse(text string) *List {
	l, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return l
}

func (l *List) add(r *Rule) {
	idx, rules := l.hostIndex, &l.block
	if r.Exception {
		idx, rules = l.exceptIdx, &l.except
	}
	if host, ok := r.literalHost(); ok {
		idx[host] = append(idx[host], r)
		return
	}
	*rules = append(*rules, r)
}

// literalHost extracts the indexable host of a ||host^-style rule: the
// pattern must begin with a literal host name terminated by '^', '/', or
// end of pattern, with no preceding wildcard.
func (r *Rule) literalHost() (string, bool) {
	if !r.DomainAnchor {
		return "", false
	}
	host := r.Pattern
	for i := 0; i < len(host); i++ {
		switch host[i] {
		case '^', '/':
			return host[:i], i > 0
		case '*', '|':
			return "", false
		}
	}
	return host, host != ""
}

// NumRules returns (block, exception) rule counts.
func (l *List) NumRules() (int, int) {
	nb := len(l.block)
	ne := len(l.except)
	for _, rs := range l.hostIndex {
		nb += len(rs)
	}
	for _, rs := range l.exceptIdx {
		ne += len(rs)
	}
	return nb, ne
}

// NumIgnored returns how many cosmetic/unsupported rules were skipped.
func (l *List) NumIgnored() int { return l.numIgnored }

func parseRule(line string) (*Rule, error) {
	r := &Rule{Raw: line}
	if strings.HasPrefix(line, "@@") {
		r.Exception = true
		line = line[2:]
	}
	// Split off options. '$' inside a URL pattern is rare in EasyList and
	// unsupported here; the last '$' is the option separator.
	if i := strings.LastIndexByte(line, '$'); i >= 0 {
		opts := line[i+1:]
		line = line[:i]
		if err := r.parseOptions(opts); err != nil {
			return nil, err
		}
	}
	if strings.HasPrefix(line, "||") {
		r.DomainAnchor = true
		line = line[2:]
	} else if strings.HasPrefix(line, "|") {
		r.StartAnchor = true
		line = line[1:]
	}
	if strings.HasSuffix(line, "|") {
		r.EndAnchor = true
		line = line[:len(line)-1]
	}
	if line == "" {
		return nil, fmt.Errorf("empty pattern in %q", r.Raw)
	}
	r.Pattern = strings.ToLower(line)
	return r, nil
}

func (r *Rule) parseOptions(opts string) error {
	for _, o := range strings.Split(opts, ",") {
		o = strings.TrimSpace(o)
		if o == "" {
			continue
		}
		lower := strings.ToLower(o)
		switch {
		case lower == "third-party":
			v := true
			r.ThirdParty = &v
		case lower == "~third-party":
			v := false
			r.ThirdParty = &v
		case strings.HasPrefix(lower, "domain="):
			for _, d := range strings.Split(o[len("domain="):], "|") {
				d = strings.ToLower(strings.TrimSpace(d))
				if d == "" {
					continue
				}
				if strings.HasPrefix(d, "~") {
					r.ExcludedDomains = append(r.ExcludedDomains, d[1:])
				} else {
					r.Domains = append(r.Domains, d)
				}
			}
		case lower == "script", lower == "image", lower == "stylesheet", lower == "xmlhttprequest",
			lower == "subdocument", lower == "popup", lower == "media", lower == "object", lower == "other",
			strings.HasPrefix(lower, "~"):
			r.ResourceTypes = append(r.ResourceTypes, lower)
		default:
			return fmt.Errorf("unsupported option %q", o)
		}
	}
	return nil
}
