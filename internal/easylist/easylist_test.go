package easylist

import (
	"strings"
	"testing"
)

func mustList(t *testing.T, rules ...string) *List {
	t.Helper()
	l, err := Parse(strings.Join(rules, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func req(url string, thirdParty bool) Request {
	host := url
	if i := strings.Index(host, "://"); i >= 0 {
		host = host[i+3:]
	}
	if i := strings.IndexAny(host, "/?#:"); i >= 0 {
		host = host[:i]
	}
	return Request{URL: url, Host: host, ThirdParty: thirdParty}
}

func TestParseCounts(t *testing.T) {
	l := mustList(t,
		"! comment",
		"[Adblock Plus 2.0]",
		"||ads.example^",
		"@@||ok.example^",
		"/banner/*",
		"example.com###cosmetic",
		"",
	)
	nb, ne := l.NumRules()
	if nb != 2 || ne != 1 {
		t.Errorf("NumRules = %d, %d; want 2, 1", nb, ne)
	}
	if l.NumIgnored() != 1 {
		t.Errorf("NumIgnored = %d, want 1", l.NumIgnored())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"||ads.example^$bogus-option",
		"|",
		"@@",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestDomainAnchorMatching(t *testing.T) {
	l := mustList(t, "||ads.example^")
	cases := []struct {
		url  string
		want bool
	}{
		{"http://ads.example/", true},
		{"https://ads.example/banner.js", true},
		{"http://sub.ads.example/x", true},
		{"http://ads.example:8080/x", true},
		{"http://notads.example/", false},          // must not match mid-label
		{"http://ads.example.com/", false},         // ^ must hit a separator, not ".c"
		{"http://x.example/?u=ads.example", false}, // only host positions
	}
	for _, c := range cases {
		_, got := l.Match(req(c.url, true))
		if got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.url, got, c.want)
		}
	}
}

func TestStartAndEndAnchors(t *testing.T) {
	l := mustList(t, "|http://exact.example/ad.gif|")
	if _, ok := l.Match(req("http://exact.example/ad.gif", true)); !ok {
		t.Error("exact match failed")
	}
	if _, ok := l.Match(req("http://exact.example/ad.gif?x=1", true)); ok {
		t.Error("end anchor ignored")
	}
	if _, ok := l.Match(req("https://exact.example/ad.gif", true)); ok {
		t.Error("start anchor ignored")
	}
}

func TestWildcards(t *testing.T) {
	l := mustList(t, "||adwall.*/impression^")
	if _, ok := l.Match(req("http://adwall.example/impression?id=1", true)); !ok {
		t.Error("wildcard match failed")
	}
	if _, ok := l.Match(req("http://adwall.example/click", true)); ok {
		t.Error("wildcard overmatched")
	}
}

func TestUnanchoredSubstring(t *testing.T) {
	l := mustList(t, "-banner-ad.")
	if _, ok := l.Match(req("http://cdn.example/img/top-banner-ad.png", true)); !ok {
		t.Error("substring match failed")
	}
	if _, ok := l.Match(req("http://cdn.example/img/banner.png", true)); ok {
		t.Error("substring overmatched")
	}
}

func TestSeparatorSemantics(t *testing.T) {
	l := mustList(t, "/track/pixel?")
	if _, ok := l.Match(req("http://t.example/track/pixel?u=1", true)); !ok {
		t.Error("literal ? failed")
	}
	// '^' matches end of address.
	l2 := mustList(t, "||pix.example^")
	if _, ok := l2.Match(req("http://pix.example", true)); !ok {
		t.Error("^ at end-of-address failed")
	}
}

func TestThirdPartyOption(t *testing.T) {
	l := mustList(t, "/adserver/*$third-party")
	if _, ok := l.Match(req("http://x.example/adserver/a.js", true)); !ok {
		t.Error("third-party request should match")
	}
	if _, ok := l.Match(req("http://x.example/adserver/a.js", false)); ok {
		t.Error("first-party request should not match")
	}
	l2 := mustList(t, "/internal/*$~third-party")
	if _, ok := l2.Match(req("http://x.example/internal/a.js", false)); !ok {
		t.Error("~third-party on first-party should match")
	}
	if _, ok := l2.Match(req("http://x.example/internal/a.js", true)); ok {
		t.Error("~third-party on third-party should not match")
	}
}

func TestDomainOption(t *testing.T) {
	l := mustList(t, "||tracker.example^$domain=news.example|~sports.news.example")
	r := req("http://tracker.example/p", true)
	r.OriginHost = "www.news.example"
	if _, ok := l.Match(r); !ok {
		t.Error("domain= include failed")
	}
	r.OriginHost = "sports.news.example"
	if _, ok := l.Match(r); ok {
		t.Error("domain= exclude failed")
	}
	r.OriginHost = "other.example"
	if _, ok := l.Match(r); ok {
		t.Error("unlisted origin should not match")
	}
}

func TestExceptionOverridesBlock(t *testing.T) {
	l := mustList(t,
		"/adserver/*",
		"@@||self-promo-ok.example/adserver/",
	)
	if _, ok := l.Match(req("http://other.example/adserver/x", true)); !ok {
		t.Error("block rule failed")
	}
	if _, ok := l.Match(req("http://self-promo-ok.example/adserver/x", true)); ok {
		t.Error("exception did not override")
	}
}

func TestResourceTypeOptionsParsedNotEnforced(t *testing.T) {
	l := mustList(t, "||ads.example^$script,image")
	if _, ok := l.Match(req("http://ads.example/a.css", true)); !ok {
		t.Error("resource types should be recorded but not enforced")
	}
}

func TestMatchHost(t *testing.T) {
	l := Bundled()
	for _, name := range AllAANames() {
		if !l.MatchHost(SimDomain(name)) {
			t.Errorf("bundled list misses %s", SimDomain(name))
		}
		if !l.MatchHost("pixel." + SimDomain(name)) {
			t.Errorf("bundled list misses subdomain of %s", SimDomain(name))
		}
	}
	for _, name := range NonAAThirdParties {
		if l.MatchHost(SimDomain(name)) {
			t.Errorf("bundled list wrongly matches %s", SimDomain(name))
		}
	}
	if l.MatchHost("weather-sim.example") {
		t.Error("first-party domain matched as A&A")
	}
}

func TestBundledRealWorldRules(t *testing.T) {
	l := Bundled()
	for _, h := range []string{"www.google-analytics.com", "ad.doubleclick.net", "api.taplytics.com"} {
		if !l.MatchHost(h) {
			t.Errorf("real-world host %s not matched", h)
		}
	}
}

func TestIsSimAADomain(t *testing.T) {
	if !IsSimAADomain("criteo-sim.example") || !IsSimAADomain("cdn.criteo-sim.example") {
		t.Error("criteo-sim should be AA")
	}
	if IsSimAADomain("usablenet-sim.example") {
		t.Error("usablenet-sim should not be AA")
	}
	if IsSimAADomain("notcriteo-sim.example") {
		t.Error("suffix match must be label-aligned")
	}
}

func TestLiteralHostExtraction(t *testing.T) {
	cases := []struct {
		rule string
		host string
		ok   bool
	}{
		{"||ads.example^", "ads.example", true},
		{"||ads.example/banner", "ads.example", true},
		{"||ads.*.example^", "", false},
		{"/adserver/", "", false},
	}
	for _, c := range cases {
		r, err := parseRule(strings.TrimPrefix(c.rule, "@@"))
		if err != nil {
			t.Fatalf("parse %q: %v", c.rule, err)
		}
		host, ok := r.literalHost()
		if host != c.host || ok != c.ok {
			t.Errorf("literalHost(%q) = %q, %v; want %q, %v", c.rule, host, ok, c.host, c.ok)
		}
	}
}

func BenchmarkBundledMatchHit(b *testing.B) {
	l := Bundled()
	r := req("https://pixel.criteo-sim.example/track/pixel?u=1", true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := l.Match(r); !ok {
			b.Fatal("expected match")
		}
	}
}

func BenchmarkBundledMatchMiss(b *testing.B) {
	l := Bundled()
	r := req("https://api.weather-sim.example/v1/forecast?zip=02115", false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := l.Match(r); ok {
			b.Fatal("unexpected match")
		}
	}
}
