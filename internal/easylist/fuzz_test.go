package easylist

import (
	"strings"
	"testing"
)

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// FuzzParseRule: arbitrary filter lines must either fail cleanly or
// produce a rule whose matcher never panics.
func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		"||ads.example^", "@@||ok.example^$third-party", "/banner/*",
		"|http://x|", "||a.b/c$domain=x.com|~y.com", "a^b*c", "@@",
		"||x^$script,image", "$third-party", "!comment",
	} {
		f.Add(seed)
	}
	req := Request{URL: "http://ads.example/banner/x?y=1", Host: "ads.example", ThirdParty: true}
	f.Fuzz(func(t *testing.T, line string) {
		r, err := parseRule(line)
		if err != nil {
			return
		}
		_ = r.matches(strings.ToLower(req.URL), req)
	})
}

// FuzzMatchPattern cross-checks the hand-rolled matcher against the
// regexp-based reference on arbitrary inputs.
func FuzzMatchPattern(f *testing.F) {
	f.Add("a*b^c", "aXb/c", true)
	f.Add("^", "", false)
	f.Add("**a", "za", true)
	f.Fuzz(func(t *testing.T, pattern, subject string, end bool) {
		if len(pattern) > 64 || len(subject) > 256 {
			return // keep the reference regexp cheap
		}
		// The reference is a Go regexp, which decodes runes; the real
		// matcher is deliberately byte-wise ('^' consumes one byte —
		// URLs on the wire are ASCII). Compare only where the two
		// definitions coincide: ASCII input.
		if !isASCII(pattern) || !isASCII(subject) {
			return
		}
		got := matchPattern(pattern, subject, end)
		want := refMatch(pattern, subject, end)
		if got != want {
			t.Fatalf("matchPattern(%q, %q, %v) = %v, reference %v", pattern, subject, end, got, want)
		}
	})
}

// FuzzParseList: whole list documents must never panic the parser.
func FuzzParseList(f *testing.F) {
	f.Add("||a^\n@@||b^\n!c\nx##y\n")
	f.Fuzz(func(t *testing.T, text string) {
		l, err := Parse(text)
		if err != nil {
			return
		}
		l.MatchHost("probe.example")
	})
}
