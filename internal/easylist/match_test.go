package easylist

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// refMatch is a regexp-based reference implementation of matchPattern used
// to cross-check the hand-rolled matcher.
func refMatch(p, s string, endAnchor bool) bool {
	var re strings.Builder
	re.WriteString("(?s)^") // ABP '*' spans any byte, including newlines
	for i := 0; i < len(p); i++ {
		switch c := p[i]; c {
		case '*':
			re.WriteString(".*")
		case '^':
			re.WriteString(`(?:[^a-zA-Z0-9_\-.%]|$)`)
		default:
			re.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	if endAnchor {
		re.WriteString("$")
	}
	return regexp.MustCompile(re.String()).MatchString(s)
}

func TestMatchPatternAgainstReference(t *testing.T) {
	patterns := []string{
		"abc", "a*c", "*abc", "abc*", "a^b", "^", "a^", "^a", "a*b*c",
		"a^*^b", "**", "a.b", "%2f", "a-b_c",
	}
	subjects := []string{
		"", "abc", "aXc", "a/c", "abcd", "xabc", "a", "ab", "a/b", "a//b",
		"a.b", "abc/", "/abc", "a%2fb", "a-b_c", "aa/bb/cc",
	}
	for _, p := range patterns {
		for _, s := range subjects {
			for _, end := range []bool{false, true} {
				got := matchPattern(p, s, end)
				want := refMatch(p, s, end)
				if got != want {
					t.Errorf("matchPattern(%q, %q, end=%v) = %v, reference %v", p, s, end, got, want)
				}
			}
		}
	}
}

// Property: random patterns over a small alphabet agree with the reference.
func TestMatchPatternQuick(t *testing.T) {
	alphabet := []byte("ab/*^.")
	build := func(seed uint64, n int) string {
		var b []byte
		for i := 0; i < n; i++ {
			b = append(b, alphabet[int(seed%uint64(len(alphabet)))])
			seed /= uint64(len(alphabet))
		}
		return string(b)
	}
	f := func(ps, ss uint64, pn, sn uint8, end bool) bool {
		p := build(ps, int(pn%6)+1)
		s := strings.Map(func(r rune) rune {
			if r == '*' || r == '^' {
				return '/'
			}
			return r
		}, build(ss, int(sn%8)))
		return matchPattern(p, s, end) == refMatch(p, s, end)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDomainAnchorStarts(t *testing.T) {
	got := domainAnchorStarts("http://a.b.example/x.y?z=1.2")
	// host starts at 7; dots inside host at offsets of "a.b.example".
	want := []int{7, 9, 11}
	if len(got) != len(want) {
		t.Fatalf("starts = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("starts = %v, want %v", got, want)
		}
	}
	if got := domainAnchorStarts("no-scheme.example/p"); got[0] != 0 {
		t.Errorf("schemeless start = %v", got)
	}
}

func TestIsSeparator(t *testing.T) {
	for _, c := range []byte("/?:=&#@!,;()") {
		if !isSeparator(c) {
			t.Errorf("%q should be a separator", c)
		}
	}
	for _, c := range []byte("abcXYZ019_-.%") {
		if isSeparator(c) {
			t.Errorf("%q should not be a separator", c)
		}
	}
}

func TestLiteralPrefix(t *testing.T) {
	cases := map[string]string{"abc*d": "abc", "*x": "", "^y": "", "plain": "plain"}
	for in, want := range cases {
		if got := literalPrefix(in); got != want {
			t.Errorf("literalPrefix(%q) = %q, want %q", in, got, want)
		}
	}
}

func BenchmarkMatchPattern(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		matchPattern("a*b^c", "aXXXXXXb/c", false)
	}
}
