package easylist

import (
	"strings"
)

// Match reports whether the request is blocked by the list: some block rule
// matches and no exception rule does. The matching block rule is returned
// for attribution.
func (l *List) Match(req Request) (*Rule, bool) {
	url := strings.ToLower(req.URL)
	host := strings.ToLower(req.Host)

	blocked := l.matchRules(url, host, req, false)
	if blocked == nil {
		return nil, false
	}
	if l.matchRules(url, host, req, true) != nil {
		return nil, false // exception overrides
	}
	return blocked, true
}

// MatchHost is the convenience the paper's methodology needs: does this
// destination domain belong to the A&A ecosystem? It classifies the host
// independent of a concrete resource path by probing a canonical URL as a
// third-party request.
func (l *List) MatchHost(host string) bool {
	_, ok := l.MatchHostRule(host)
	return ok
}

// MatchHostRule is MatchHost with attribution: it returns the block rule
// that classified the host as A&A, for leak provenance and trace events.
// The host is normalized exactly once; repeat classifications should go
// through a HostCache, whose cached path skips even that.
func (l *List) MatchHostRule(host string) (*Rule, bool) {
	return l.matchHostFolded(strings.ToLower(host))
}

// matchHostFolded is the canonical-URL probe behind MatchHostRule and
// HostCache. The host must already be lowercase: normalization is hoisted
// to the caller so the cached path never re-folds a repeat host.
func (l *List) matchHostFolded(host string) (*Rule, bool) {
	req := Request{
		URL:        "http://" + host + "/",
		Host:       host,
		ThirdParty: true,
	}
	blocked := l.matchRules(req.URL, host, req, false)
	if blocked == nil {
		return nil, false
	}
	if l.matchRules(req.URL, host, req, true) != nil {
		return nil, false // exception overrides
	}
	return blocked, true
}

func (l *List) matchRules(url, host string, req Request, exception bool) *Rule {
	idx, generic := l.hostIndex, l.block
	if exception {
		idx, generic = l.exceptIdx, l.except
	}
	// Indexed domain-anchored rules: walk host suffixes ("a.b.c" tries
	// "a.b.c", "b.c", "c").
	h := host
	for {
		for _, r := range idx[h] {
			if r.matches(url, req) {
				return r
			}
		}
		i := strings.IndexByte(h, '.')
		if i < 0 {
			break
		}
		h = h[i+1:]
	}
	for _, r := range generic {
		if r.matches(url, req) {
			return r
		}
	}
	return nil
}

// matches applies the rule's options and pattern to one request.
func (r *Rule) matches(url string, req Request) bool {
	if r.ThirdParty != nil && *r.ThirdParty != req.ThirdParty {
		return false
	}
	if len(r.Domains) > 0 && !hostMatchesAny(req.OriginHost, r.Domains) {
		return false
	}
	if len(r.ExcludedDomains) > 0 && hostMatchesAny(req.OriginHost, r.ExcludedDomains) {
		return false
	}
	switch {
	case r.DomainAnchor:
		for _, start := range domainAnchorStarts(url) {
			if matchPattern(r.Pattern, url[start:], r.EndAnchor) {
				return true
			}
		}
		return false
	case r.StartAnchor:
		return matchPattern(r.Pattern, url, r.EndAnchor)
	default:
		// Unanchored: try every start position. Use the first literal run
		// of the pattern to skip ahead when one exists.
		if lit := literalPrefix(r.Pattern); lit != "" {
			from := 0
			for from <= len(url) {
				j := strings.Index(url[from:], lit)
				if j < 0 {
					return false
				}
				idx := from + j
				if matchPattern(r.Pattern, url[idx:], r.EndAnchor) {
					return true
				}
				from = idx + 1
			}
			return false
		}
		for i := 0; i <= len(url); i++ {
			if matchPattern(r.Pattern, url[i:], r.EndAnchor) {
				return true
			}
		}
		return false
	}
}

func hostMatchesAny(host string, domains []string) bool {
	host = strings.ToLower(host)
	for _, d := range domains {
		if host == d || strings.HasSuffix(host, "."+d) {
			return true
		}
	}
	return false
}

// domainAnchorStarts lists the URL offsets where a || rule may begin
// matching: the start of the host, and after each dot inside the host.
func domainAnchorStarts(url string) []int {
	hostStart := 0
	if i := strings.Index(url, "://"); i >= 0 {
		hostStart = i + 3
	}
	hostEnd := len(url)
	for i := hostStart; i < len(url); i++ {
		if c := url[i]; c == '/' || c == '?' || c == '#' || c == ':' {
			hostEnd = i
			break
		}
	}
	starts := []int{hostStart}
	for i := hostStart; i < hostEnd; i++ {
		if url[i] == '.' {
			starts = append(starts, i+1)
		}
	}
	return starts
}

// literalPrefix returns the leading run of pattern characters with no
// wildcard or separator class, used to accelerate unanchored scans.
func literalPrefix(p string) string {
	for i := 0; i < len(p); i++ {
		if p[i] == '*' || p[i] == '^' {
			return p[:i]
		}
	}
	return p
}

// isSeparator implements ABP's '^': any character that is not a letter, a
// digit, or one of "_-.%".
func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_' || c == '-' || c == '.' || c == '%':
		return false
	}
	return true
}

// matchPattern matches pattern p against s anchored at the start of s.
// '*' matches any run (including empty); '^' matches one separator
// character, or the end of s. If endAnchor is set, the whole of s must be
// consumed.
func matchPattern(p, s string, endAnchor bool) bool {
	// Iterative wildcard matching with backtracking.
	var starP, starS = -1, 0
	i, j := 0, 0 // i into p, j into s
	for {
		if i == len(p) {
			if !endAnchor || j == len(s) {
				return true
			}
		} else {
			switch c := p[i]; c {
			case '*':
				starP, starS = i, j
				i++
				continue
			case '^':
				if j < len(s) && isSeparator(s[j]) {
					i++
					j++
					continue
				}
				if j == len(s) {
					// Trailing '^' (possibly followed only by more '^' or
					// end) may match the end of the address.
					i++
					continue
				}
			default:
				if j < len(s) && s[j] == c {
					i++
					j++
					continue
				}
			}
		}
		// Mismatch: backtrack to the last '*', consuming one more char.
		if starP >= 0 && starS < len(s) {
			starS++
			i, j = starP+1, starS
			continue
		}
		return false
	}
}
