package easylist

import "testing"

// BenchmarkMatchHostHit measures the A&A categorization probe for a host
// the bundled list blocks.
func BenchmarkMatchHostHit(b *testing.B) {
	list := Bundled()
	host := ""
	for _, name := range AllAANames() {
		host = "cdn." + name + "-sim.example"
		if list.MatchHost(host) {
			break
		}
		host = ""
	}
	if host == "" {
		b.Fatal("no blocked host found in bundled list")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !list.MatchHost(host) {
			b.Fatal("expected block")
		}
	}
}

// BenchmarkMatchHostMiss measures the probe for a first-party host no rule
// covers — the common case in a campaign.
func BenchmarkMatchHostMiss(b *testing.B) {
	list := Bundled()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if list.MatchHost("www.weathernow-sim.example") {
			b.Fatal("unexpected block")
		}
	}
}

// BenchmarkMatchHostRule measures rule attribution (which rule fired) —
// the provenance path, typically off the hot loop.
func BenchmarkMatchHostRule(b *testing.B) {
	list := Bundled()
	host := ""
	for _, name := range AllAANames() {
		host = "cdn." + name + "-sim.example"
		if list.MatchHost(host) {
			break
		}
		host = ""
	}
	if host == "" {
		b.Fatal("no blocked host found in bundled list")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := list.MatchHostRule(host); !ok {
			b.Fatal("expected rule")
		}
	}
}
