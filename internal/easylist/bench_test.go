package easylist

import "testing"

// BenchmarkMatchHostHit measures the A&A categorization probe for a host
// the bundled list blocks.
func BenchmarkMatchHostHit(b *testing.B) {
	list := Bundled()
	host := ""
	for _, name := range AllAANames() {
		host = "cdn." + name + "-sim.example"
		if list.MatchHost(host) {
			break
		}
		host = ""
	}
	if host == "" {
		b.Fatal("no blocked host found in bundled list")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !list.MatchHost(host) {
			b.Fatal("expected block")
		}
	}
}

// BenchmarkMatchHostMiss measures the probe for a first-party host no rule
// covers — the common case in a campaign.
func BenchmarkMatchHostMiss(b *testing.B) {
	list := Bundled()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if list.MatchHost("www.weathernow-sim.example") {
			b.Fatal("unexpected block")
		}
	}
}

// BenchmarkHostCacheRepeat is the acceptance benchmark for memoized A&A
// classification: a campaign-shaped workload where the same destination
// hosts recur over and over. "cached" goes through the HostCache (the
// runner's path); "uncached" re-walks the list every time (the old path).
// The cached sub-benchmark is what bench_baseline.json guards.
func BenchmarkHostCacheRepeat(b *testing.B) {
	list := Bundled()
	var hosts []string
	for _, name := range AllAANames() {
		hosts = append(hosts, "cdn."+name+"-sim.example")
	}
	hosts = append(hosts, "www.weathernow-sim.example", "api.news-sim.example")
	b.Run("cached", func(b *testing.B) {
		hc := NewHostCache(list, 0)
		for _, h := range hosts { // warm: a campaign sees each host early
			hc.MatchHost(h)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hc.MatchHost(hosts[i%len(hosts)])
		}
	})
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			list.MatchHost(hosts[i%len(hosts)])
		}
	})
}

// BenchmarkMatchHostRule measures rule attribution (which rule fired) —
// the provenance path, typically off the hot loop.
func BenchmarkMatchHostRule(b *testing.B) {
	list := Bundled()
	host := ""
	for _, name := range AllAANames() {
		host = "cdn." + name + "-sim.example"
		if list.MatchHost(host) {
			break
		}
		host = ""
	}
	if host == "" {
		b.Fatal("no blocked host found in bundled list")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := list.MatchHostRule(host); !ok {
			b.Fatal("expected rule")
		}
	}
}
