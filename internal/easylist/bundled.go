package easylist

import (
	"strings"
	"sync"
)

// Top20AANames are the organizational names of Table 2's top-20 A&A
// domains, in the paper's order (sorted by total leaks received).
var Top20AANames = []string{
	"amobee", "moatads", "vrvm", "google-analytics", "facebook",
	"groceryserver", "serving-sys", "googlesyndication", "thebrighttag",
	"tiqcdn", "marinsm", "criteo", "2mdn", "monetate", "247realmedia",
	"krxd", "doubleverify", "cloudinary", "webtrends", "liftoff",
}

// ExtraAANames are additional A&A organizations in the simulated ecosystem:
// ad exchanges used in real-time-bidding redirect chains, app analytics
// SDKs, and common web trackers. taplytics appears here because Grubhub's
// analytics provider received password leaks (§4.2).
var ExtraAANames = []string{
	"doubleclick", "adnxs", "rubiconproject", "pubmatic", "openx",
	"scorecardresearch", "chartbeat", "quantserve", "taboola", "outbrain",
	"newrelic", "optimizely", "mixpanel", "flurry", "taplytics",
	"amplitude", "branchmetrics", "adjustly", "comscore", "bluekai",
	"mathtag", "bidswitch", "casalemedia", "advertising-sim", "adcolony",
	"inmobi", "millennialmedia", "mopub", "yieldmo", "tapad",
}

// NonAAThirdParties are simulated third parties that EasyList must NOT
// match: usablenet (JetBlue's authentication platform) and gigya (the
// identity-management service behind The Food Network and NCAA Sports
// logins) receive PII — including passwords — but are not advertising or
// analytics domains.
var NonAAThirdParties = []string{
	"usablenet", "gigya", "cloudfiles", "paymentsgw", "mapsapi", "cdnedge",
}

// SimDomain converts an organizational name into its simulated registrable
// domain, e.g. "google-analytics" → "google-analytics-sim.example".
func SimDomain(name string) string { return name + "-sim.example" }

// AllAANames returns the complete A&A roster (top-20 first).
func AllAANames() []string {
	out := make([]string, 0, len(Top20AANames)+len(ExtraAANames))
	out = append(out, Top20AANames...)
	out = append(out, ExtraAANames...)
	return out
}

// bundledText builds the mini-EasyList shipped with the library: one
// domain-anchored rule per simulated A&A organization, rules for their
// common real-world counterparts, and a handful of generic pattern rules
// exercising the full syntax.
func bundledText() string {
	var b strings.Builder
	b.WriteString("[Adblock Plus 2.0]\n")
	b.WriteString("! appvsweb bundled mini-EasyList\n")
	for _, name := range AllAANames() {
		b.WriteString("||" + SimDomain(name) + "^\n")
	}
	// Real-world counterparts for trace compatibility.
	for _, d := range []string{
		"google-analytics.com", "doubleclick.net", "googlesyndication.com",
		"2mdn.net", "moatads.com", "criteo.com", "krxd.net", "scorecardresearch.com",
		"facebook.net", "serving-sys.com", "amobee.com", "taplytics.com",
	} {
		b.WriteString("||" + d + "^\n")
	}
	// Generic pattern rules (unanchored, anchored, wildcard, options).
	b.WriteString("/adserver/*$third-party\n")
	b.WriteString("/track/pixel?\n")
	b.WriteString("&ad_unit=\n")
	b.WriteString("-banner-ad.\n")
	b.WriteString("||adwall.*/impression^\n")
	// Exception: a first party serving its own "ads" path is not A&A.
	b.WriteString("@@||self-promo-ok.example/adserver/$~third-party\n")
	// Cosmetic rules are ignored by the network matcher.
	b.WriteString("example.com###ad-banner\n")
	return b.String()
}

var (
	bundledOnce sync.Once
	bundledList *List
)

// Bundled returns the compiled built-in list. The list is compiled once and
// shared; List matching is safe for concurrent use.
func Bundled() *List {
	bundledOnce.Do(func() { bundledList = MustParse(bundledText()) })
	return bundledList
}

// IsSimAADomain reports whether host belongs to the simulated A&A
// ecosystem. This is ground truth for tests; the categorizer itself must
// use List matching, as the paper's methodology does.
func IsSimAADomain(host string) bool {
	host = strings.ToLower(host)
	for _, name := range AllAANames() {
		d := SimDomain(name)
		if host == d || strings.HasSuffix(host, "."+d) {
			return true
		}
	}
	return false
}
