package capture

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Sink receives flows as the proxy records them. Implementations must be
// safe for concurrent use: the proxy serves connections in parallel.
type Sink interface {
	Record(f *Flow)
}

// IDSource hands out monotonically increasing flow IDs. Sharing one source
// across the sinks of a campaign makes every flow ID campaign-unique, so a
// bare ID is enough to name a flow in traces and leak provenance
// (avwtrace explain <flow-id>).
type IDSource struct {
	n atomic.Int64
}

// Next returns the next ID (1, 2, ...).
func (s *IDSource) Next() int64 { return s.n.Add(1) }

// MemSink collects flows in memory, assigning monotonically increasing IDs.
type MemSink struct {
	mu    sync.Mutex
	ids   *IDSource
	flows []*Flow
}

// NewMemSink returns an empty in-memory sink with a private ID source
// (IDs start at 1).
func NewMemSink() *MemSink { return NewMemSinkIDs(&IDSource{}) }

// NewMemSinkIDs returns an in-memory sink drawing IDs from a shared
// source; the campaign runner uses one source per campaign.
func NewMemSinkIDs(ids *IDSource) *MemSink { return &MemSink{ids: ids} }

// Record stores a copy of the flow.
func (s *MemSink) Record(f *Flow) {
	c := f.Clone()
	c.ID = s.ids.Next()
	s.mu.Lock()
	s.flows = append(s.flows, c)
	s.mu.Unlock()
}

// Flows returns the captured flows ordered by ID.
func (s *MemSink) Flows() []*Flow {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Flow, len(s.flows))
	copy(out, s.flows)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports how many flows have been recorded.
func (s *MemSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flows)
}

// Reset discards all captured flows but keeps the ID counter monotonic.
func (s *MemSink) Reset() {
	s.mu.Lock()
	s.flows = nil
	s.mu.Unlock()
}

// CountingSink counts flows and bytes without retaining content; useful for
// load tests and ablation runs.
type CountingSink struct {
	Count atomic.Int64
	Bytes atomic.Int64
}

// Record implements Sink.
func (s *CountingSink) Record(f *Flow) {
	s.Count.Add(1)
	s.Bytes.Add(f.Bytes())
}

// JSONLSink streams flows to a writer as they are recorded, one JSON
// document per line, serializing concurrent recordings. IDs are assigned
// monotonically. The proxy serves connections in parallel, so a streaming
// sink must lock around each write.
type JSONLSink struct {
	mu   sync.Mutex
	next int64
	w    *bufio.Writer
	err  error
}

// NewJSONLSink wraps w in a streaming sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Record implements Sink.
func (s *JSONLSink) Record(f *Flow) {
	c := f.Clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.next++
	c.ID = s.next
	enc := json.NewEncoder(s.w)
	if err := enc.Encode(c); err != nil {
		s.err = err
		return
	}
	s.err = s.w.Flush()
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// TeeSink duplicates flows to several sinks.
type TeeSink []Sink

// Record implements Sink.
func (t TeeSink) Record(f *Flow) {
	for _, s := range t {
		s.Record(f)
	}
}

// WriteJSONL streams flows to w, one JSON document per line.
func WriteJSONL(w io.Writer, flows []*Flow) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, f := range flows {
		if err := enc.Encode(f); err != nil {
			return fmt.Errorf("capture: encode flow %d: %w", f.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSONL flow trace produced by WriteJSONL.
func ReadJSONL(r io.Reader) ([]*Flow, error) {
	var flows []*Flow
	dec := json.NewDecoder(r)
	for {
		var f Flow
		if err := dec.Decode(&f); err != nil {
			if err == io.EOF {
				return flows, nil
			}
			return nil, fmt.Errorf("capture: decode flow %d: %w", len(flows), err)
		}
		flows = append(flows, &f)
	}
}

// SaveTrace writes flows to a JSONL file.
func SaveTrace(path string, flows []*Flow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteJSONL(f, flows); err != nil {
		return err
	}
	return f.Close()
}

// LoadTrace reads a JSONL flow trace from disk.
func LoadTrace(path string) ([]*Flow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}
