package capture

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"
)

// HAR export: flow traces interoperate with standard HTTP tooling (browser
// devtools, har analyzers) via the HTTP Archive 1.2 format.

type harLog struct {
	Log harLogBody `json:"log"`
}

type harLogBody struct {
	Version string     `json:"version"`
	Creator harCreator `json:"creator"`
	Entries []harEntry `json:"entries"`
}

type harCreator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

type harNV struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

type harEntry struct {
	StartedDateTime string      `json:"startedDateTime"`
	Time            float64     `json:"time"`
	Request         harRequest  `json:"request"`
	Response        harResponse `json:"response"`
	Cache           struct{}    `json:"cache"`
	Timings         harTimings  `json:"timings"`
	Comment         string      `json:"comment,omitempty"`
}

type harRequest struct {
	Method      string       `json:"method"`
	URL         string       `json:"url"`
	HTTPVersion string       `json:"httpVersion"`
	Cookies     []harNV      `json:"cookies"`
	Headers     []harNV      `json:"headers"`
	QueryString []harNV      `json:"queryString"`
	PostData    *harPostData `json:"postData,omitempty"`
	HeadersSize int64        `json:"headersSize"`
	BodySize    int64        `json:"bodySize"`
}

type harPostData struct {
	MimeType string `json:"mimeType"`
	Text     string `json:"text"`
}

type harResponse struct {
	Status      int        `json:"status"`
	StatusText  string     `json:"statusText"`
	HTTPVersion string     `json:"httpVersion"`
	Cookies     []harNV    `json:"cookies"`
	Headers     []harNV    `json:"headers"`
	Content     harContent `json:"content"`
	RedirectURL string     `json:"redirectURL"`
	HeadersSize int64      `json:"headersSize"`
	BodySize    int64      `json:"bodySize"`
}

type harContent struct {
	Size     int64  `json:"size"`
	MimeType string `json:"mimeType"`
}

type harTimings struct {
	Send    float64 `json:"send"`
	Wait    float64 `json:"wait"`
	Receive float64 `json:"receive"`
}

// WriteHAR exports flows as an HTTP Archive 1.2 document.
func WriteHAR(w io.Writer, creator string, flows []*Flow) error {
	doc := harLog{Log: harLogBody{
		Version: "1.2",
		Creator: harCreator{Name: creator, Version: "1.0"},
		Entries: make([]harEntry, 0, len(flows)),
	}}
	for _, f := range flows {
		doc.Log.Entries = append(doc.Log.Entries, flowToHAR(f))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("capture: encode HAR: %w", err)
	}
	return nil
}

func flowToHAR(f *Flow) harEntry {
	e := harEntry{
		StartedDateTime: f.Start.UTC().Format(time.RFC3339Nano),
		Time:            1,
		Timings:         harTimings{Send: 0, Wait: 1, Receive: 0},
	}
	if !f.Intercepted && f.Protocol == HTTPS {
		e.Comment = "TLS not intercepted (certificate pinning); metadata only"
	}
	e.Request = harRequest{
		Method:      f.Method,
		URL:         f.URL,
		HTTPVersion: "HTTP/1.1",
		Cookies:     []harNV{},
		Headers:     nvPairs(f.RequestHeaders),
		QueryString: queryPairs(f.URL),
		HeadersSize: -1,
		BodySize:    int64(len(f.RequestBody)),
	}
	if f.RequestBody != "" {
		e.Request.PostData = &harPostData{MimeType: f.ContentType(), Text: f.RequestBody}
	}
	respCT := ""
	if f.ResponseHeaders != nil {
		respCT = f.ResponseHeaders["Content-Type"]
	}
	e.Response = harResponse{
		Status:      f.Status,
		StatusText:  statusText(f.Status),
		HTTPVersion: "HTTP/1.1",
		Cookies:     []harNV{},
		Headers:     nvPairs(f.ResponseHeaders),
		Content:     harContent{Size: f.ResponseSize, MimeType: respCT},
		HeadersSize: -1,
		BodySize:    f.ResponseSize,
	}
	return e
}

func nvPairs(m map[string]string) []harNV {
	out := make([]harNV, 0, len(m))
	for k, v := range m {
		out = append(out, harNV{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func queryPairs(raw string) []harNV {
	u, err := url.Parse(raw)
	if err != nil {
		return []harNV{}
	}
	out := []harNV{}
	for _, part := range splitQuery(u.RawQuery) {
		out = append(out, part)
	}
	return out
}

func splitQuery(q string) []harNV {
	var out []harNV
	for q != "" {
		var part string
		part, q = cutAmp(q)
		if part == "" {
			continue
		}
		k, v := cutEq(part)
		if uk, err := url.QueryUnescape(k); err == nil {
			k = uk
		}
		if uv, err := url.QueryUnescape(v); err == nil {
			v = uv
		}
		out = append(out, harNV{k, v})
	}
	return out
}

func cutAmp(s string) (string, string) {
	for i := 0; i < len(s); i++ {
		if s[i] == '&' {
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}

func cutEq(s string) (string, string) {
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}

func statusText(code int) string {
	if code == 0 {
		return ""
	}
	return http.StatusText(code)
}

// ReadHAR imports an HTTP Archive document (e.g. exported from browser
// devtools or mitmproxy) as flows, so traffic captured by other tools can
// run through the same PII analysis pipeline.
func ReadHAR(r io.Reader) ([]*Flow, error) {
	var doc struct {
		Log struct {
			Entries []struct {
				StartedDateTime string `json:"startedDateTime"`
				Request         struct {
					Method   string  `json:"method"`
					URL      string  `json:"url"`
					Headers  []harNV `json:"headers"`
					PostData *struct {
						MimeType string `json:"mimeType"`
						Text     string `json:"text"`
					} `json:"postData"`
					BodySize int64 `json:"bodySize"`
				} `json:"request"`
				Response struct {
					Status  int `json:"status"`
					Content struct {
						Size int64 `json:"size"`
					} `json:"content"`
				} `json:"response"`
			} `json:"entries"`
		} `json:"log"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("capture: decode HAR: %w", err)
	}
	flows := make([]*Flow, 0, len(doc.Log.Entries))
	for i, e := range doc.Log.Entries {
		f := &Flow{
			ID:           int64(i + 1),
			Method:       e.Request.Method,
			URL:          e.Request.URL,
			Status:       e.Response.Status,
			ResponseSize: e.Response.Content.Size,
			Intercepted:  true,
		}
		if t, err := time.Parse(time.RFC3339Nano, e.StartedDateTime); err == nil {
			f.Start = t
		}
		if u, err := url.Parse(e.Request.URL); err == nil {
			f.Host = u.Hostname()
			if u.Scheme == "http" {
				f.Protocol = HTTP
			} else {
				f.Protocol = HTTPS
			}
		}
		if len(e.Request.Headers) > 0 {
			f.RequestHeaders = make(map[string]string, len(e.Request.Headers))
			for _, h := range e.Request.Headers {
				f.RequestHeaders[h.Name] = h.Value
			}
		}
		if e.Request.PostData != nil {
			f.RequestBody = e.Request.PostData.Text
			if f.RequestHeaders == nil {
				f.RequestHeaders = map[string]string{}
			}
			if f.RequestHeaders["Content-Type"] == "" {
				f.RequestHeaders["Content-Type"] = e.Request.PostData.MimeType
			}
		}
		f.BytesUp = int64(len(f.RequestBody))
		f.BytesDown = f.ResponseSize
		flows = append(flows, f)
	}
	return flows, nil
}
