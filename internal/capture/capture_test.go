package capture

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleFlow(id int64, host string) *Flow {
	return &Flow{
		ID:       id,
		Start:    time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC),
		Client:   "android-1",
		Protocol: HTTPS,
		Method:   "POST",
		Host:     host,
		URL:      "https://" + host + "/api/v1/track?uid=42",
		RequestHeaders: map[string]string{
			"Content-Type": "application/json",
			"Cookie":       "sid=abc",
			"User-Agent":   "SimBrowser/1.0",
		},
		RequestBody:  `{"email":"x@y.example"}`,
		Status:       200,
		ResponseSize: 512,
		BytesUp:      300,
		BytesDown:    700,
		Intercepted:  true,
	}
}

func TestFlowAccessors(t *testing.T) {
	f := sampleFlow(1, "t.example")
	if f.Plaintext() {
		t.Error("https flow reported plaintext")
	}
	if got := f.Header("content-type"); got != "application/json" {
		t.Errorf("case-insensitive header = %q", got)
	}
	if got := f.ContentType(); got != "application/json" {
		t.Errorf("ContentType = %q", got)
	}
	if got := f.Cookie(); got != "sid=abc" {
		t.Errorf("Cookie = %q", got)
	}
	if got := f.Path(); got != "/api/v1/track" {
		t.Errorf("Path = %q", got)
	}
	if got := f.Bytes(); got != 1000 {
		t.Errorf("Bytes = %d", got)
	}
	if got := f.Header("missing"); got != "" {
		t.Errorf("missing header = %q", got)
	}
	bad := &Flow{URL: "://x"}
	if got := bad.Path(); got != "" {
		t.Errorf("bad URL Path = %q", got)
	}
}

func TestFlowSections(t *testing.T) {
	f := sampleFlow(1, "t.example")
	s := f.Sections()
	if s["url"] != f.URL || s["body"] != f.RequestBody {
		t.Error("sections missing url/body")
	}
	if !strings.Contains(s["headers"], "Cookie: sid=abc\r\n") {
		t.Errorf("headers section = %q", s["headers"])
	}
	// Headers serialize in sorted key order for determinism.
	if !(strings.Index(s["headers"], "Content-Type") < strings.Index(s["headers"], "Cookie")) {
		t.Error("headers not sorted")
	}
}

func TestFlowCloneIsDeep(t *testing.T) {
	f := sampleFlow(1, "t.example")
	c := f.Clone()
	c.RequestHeaders["Cookie"] = "changed"
	if f.RequestHeaders["Cookie"] == "changed" {
		t.Error("clone shares header map")
	}
}

func TestMemSinkAssignsIDsAndCopies(t *testing.T) {
	s := NewMemSink()
	f := sampleFlow(0, "a.example")
	s.Record(f)
	f.Host = "mutated.example"
	s.Record(f)
	got := s.Flows()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("ids = %+v", got)
	}
	if got[0].Host != "a.example" {
		t.Error("sink did not copy flow")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Error("Reset did not clear")
	}
	s.Record(f)
	if s.Flows()[0].ID != 3 {
		t.Error("ID counter reset")
	}
}

func TestMemSinkConcurrent(t *testing.T) {
	s := NewMemSink()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Record(sampleFlow(0, "c.example"))
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
	ids := make(map[int64]bool)
	for _, f := range s.Flows() {
		if ids[f.ID] {
			t.Fatalf("duplicate ID %d", f.ID)
		}
		ids[f.ID] = true
	}
}

func TestCountingSink(t *testing.T) {
	var s CountingSink
	s.Record(sampleFlow(1, "a.example"))
	s.Record(sampleFlow(2, "b.example"))
	if s.Count.Load() != 2 || s.Bytes.Load() != 2000 {
		t.Errorf("count=%d bytes=%d", s.Count.Load(), s.Bytes.Load())
	}
}

func TestTeeSink(t *testing.T) {
	a, b := NewMemSink(), NewMemSink()
	tee := TeeSink{a, b}
	tee.Record(sampleFlow(1, "x.example"))
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("tee did not duplicate")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	flows := []*Flow{sampleFlow(1, "a.example"), sampleFlow(2, "b.example")}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, flows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !reflect.DeepEqual(got[0], flows[0]) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadJSONLCorrupt(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"id\":1}\nnot-json\n")); err == nil {
		t.Error("corrupt trace accepted")
	}
}

func TestSaveLoadTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	flows := []*Flow{sampleFlow(1, "a.example")}
	if err := SaveTrace(path, flows); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Host != "a.example" {
		t.Errorf("loaded %+v", got)
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFilterBackground(t *testing.T) {
	flows := []*Flow{
		sampleFlow(1, "api.svc.example"),
		sampleFlow(2, "sync.play-services.example"),
		sampleFlow(3, "ads.tracker.example"),
	}
	kept, dropped := FilterBackground(flows, func(h string) bool {
		return strings.Contains(h, "play-services")
	})
	if len(kept) != 2 || len(dropped) != 1 {
		t.Fatalf("kept=%d dropped=%d", len(kept), len(dropped))
	}
	if dropped[0].ID != 2 {
		t.Error("wrong flow dropped")
	}
	kept, dropped = FilterBackground(flows, nil)
	if len(kept) != 3 || dropped != nil {
		t.Error("nil classifier must keep everything")
	}
}

func TestFilterClient(t *testing.T) {
	a := sampleFlow(1, "x.example")
	b := sampleFlow(2, "x.example")
	b.Client = "ios-1"
	got := FilterClient([]*Flow{a, b}, "ios-1")
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("FilterClient = %+v", got)
	}
}

func TestHostsAndTotalBytes(t *testing.T) {
	flows := []*Flow{
		sampleFlow(1, "A.example"),
		sampleFlow(2, "b.example"),
		sampleFlow(3, "a.example"),
	}
	if got := Hosts(flows); !reflect.DeepEqual(got, []string{"a.example", "b.example"}) {
		t.Errorf("Hosts = %v", got)
	}
	if got := TotalBytes(flows); got != 3000 {
		t.Errorf("TotalBytes = %d", got)
	}
}

func BenchmarkMemSinkRecord(b *testing.B) {
	s := NewMemSink()
	f := sampleFlow(0, "bench.example")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Record(f)
	}
}

func BenchmarkJSONLWrite(b *testing.B) {
	flows := make([]*Flow, 100)
	for i := range flows {
		flows[i] = sampleFlow(int64(i), "bench.example")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, flows); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWriteHAR(t *testing.T) {
	f := sampleFlow(1, "tracker.example")
	f.ResponseHeaders = map[string]string{"Content-Type": "image/gif"}
	pinned := &Flow{
		ID: 2, Start: f.Start, Protocol: HTTPS, Method: "CONNECT",
		Host: "pinned.example", URL: "https://pinned.example/",
	}
	var buf bytes.Buffer
	if err := WriteHAR(&buf, "appvsweb-test", []*Flow{f, pinned}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Log struct {
			Version string `json:"version"`
			Creator struct {
				Name string `json:"name"`
			} `json:"creator"`
			Entries []struct {
				Request struct {
					Method      string                         `json:"method"`
					URL         string                         `json:"url"`
					QueryString []struct{ Name, Value string } `json:"queryString"`
					PostData    *struct {
						MimeType string `json:"mimeType"`
						Text     string `json:"text"`
					} `json:"postData"`
				} `json:"request"`
				Response struct {
					Status  int `json:"status"`
					Content struct {
						MimeType string `json:"mimeType"`
					} `json:"content"`
				} `json:"response"`
				Comment string `json:"comment"`
			} `json:"entries"`
		} `json:"log"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("HAR is not valid JSON: %v", err)
	}
	if doc.Log.Version != "1.2" || doc.Log.Creator.Name != "appvsweb-test" {
		t.Errorf("log header = %+v", doc.Log)
	}
	e := doc.Log.Entries[0]
	if e.Request.Method != "POST" || e.Request.PostData == nil || e.Request.PostData.MimeType != "application/json" {
		t.Errorf("entry request = %+v", e.Request)
	}
	if len(e.Request.QueryString) != 1 || e.Request.QueryString[0].Name != "uid" {
		t.Errorf("queryString = %+v", e.Request.QueryString)
	}
	if e.Response.Status != 200 || e.Response.Content.MimeType != "image/gif" {
		t.Errorf("entry response = %+v", e.Response)
	}
	if doc.Log.Entries[1].Comment == "" {
		t.Error("pinned flow should carry an explanatory comment")
	}
}

func TestJSONLSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Record(sampleFlow(0, "stream.example"))
			}
		}()
	}
	wg.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	flows, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the stream: %v", err)
	}
	if len(flows) != 400 {
		t.Errorf("flows = %d, want 400", len(flows))
	}
	ids := make(map[int64]bool)
	for _, f := range flows {
		if f.ID == 0 || ids[f.ID] {
			t.Fatalf("bad or duplicate ID %d", f.ID)
		}
		ids[f.ID] = true
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errWriteFailed
	}
	return len(p), nil
}

var errWriteFailed = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestJSONLSinkSurfacesWriteErrors(t *testing.T) {
	s := NewJSONLSink(&failWriter{})
	for i := 0; i < 2000; i++ { // enough to overflow the bufio buffer
		s.Record(sampleFlow(0, "x.example"))
	}
	if s.Err() == nil {
		t.Error("write error swallowed")
	}
}

func TestHARRoundTrip(t *testing.T) {
	in := []*Flow{sampleFlow(1, "rt.example")}
	var buf bytes.Buffer
	if err := WriteHAR(&buf, "test", in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadHAR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("flows = %d", len(out))
	}
	f := out[0]
	if f.Method != "POST" || f.Host != "rt.example" || f.URL != in[0].URL {
		t.Errorf("round trip = %+v", f)
	}
	if f.RequestBody != in[0].RequestBody || f.ContentType() != "application/json" {
		t.Errorf("body/type = %q %q", f.RequestBody, f.ContentType())
	}
	if !f.Start.Equal(in[0].Start) {
		t.Errorf("start = %v", f.Start)
	}
	if f.Protocol != HTTPS {
		t.Errorf("protocol = %v", f.Protocol)
	}
}

func TestReadHARRejectsGarbage(t *testing.T) {
	if _, err := ReadHAR(strings.NewReader("not json")); err == nil {
		t.Error("garbage HAR accepted")
	}
}
