package capture

import (
	"strings"
)

// HostClassifier decides whether a destination host is OS/background
// traffic that must be removed from a trace before analysis (§3.2
// "Filtering"). domains.Categorizer satisfies this via a small adapter.
type HostClassifier func(host string) bool

// FilterBackground partitions flows into (kept, dropped) using the
// classifier. Flow order is preserved.
func FilterBackground(flows []*Flow, isBackground HostClassifier) (kept, dropped []*Flow) {
	for _, f := range flows {
		if isBackground != nil && isBackground(f.Host) {
			dropped = append(dropped, f)
			continue
		}
		kept = append(kept, f)
	}
	return kept, dropped
}

// FilterClient keeps only flows originating from the given client session.
// The paper achieves the same isolation physically (factory-reset phones,
// one app installed at a time); the simulator multiplexes sessions through
// one proxy and separates them here.
func FilterClient(flows []*Flow, client string) []*Flow {
	var out []*Flow
	for _, f := range flows {
		if f.Client == client {
			out = append(out, f)
		}
	}
	return out
}

// Hosts returns the distinct destination hosts in first-seen order.
func Hosts(flows []*Flow) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range flows {
		h := strings.ToLower(f.Host)
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

// TotalBytes sums both directions across the flows.
func TotalBytes(flows []*Flow) int64 {
	var n int64
	for _, f := range flows {
		n += f.Bytes()
	}
	return n
}
