// Package capture defines the flow record — the unit of analysis for the
// whole study — along with in-memory and JSONL trace stores and the
// background-traffic filter of §3.2.
//
// A Flow is one HTTP request/response exchange observed at the measurement
// proxy. The simulated clients disable connection reuse, so one flow
// corresponds to one TCP connection, matching the paper's flow counting in
// Figure 1b.
package capture

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"time"
)

// Protocol distinguishes plaintext from intercepted-TLS exchanges.
type Protocol string

const (
	HTTP  Protocol = "http"
	HTTPS Protocol = "https"
)

// Flow is one captured request/response exchange.
type Flow struct {
	ID       int64     `json:"id"`
	Start    time.Time `json:"start"`
	Client   string    `json:"client"`   // device/session identifier
	Protocol Protocol  `json:"protocol"` // http or https
	Method   string    `json:"method"`
	Host     string    `json:"host"` // destination host (SNI / Host header)
	URL      string    `json:"url"`  // absolute request URL

	RequestHeaders  map[string]string `json:"request_headers,omitempty"`
	RequestBody     string            `json:"request_body,omitempty"`
	Status          int               `json:"status"`
	ResponseHeaders map[string]string `json:"response_headers,omitempty"`
	ResponseSize    int64             `json:"response_size"` // body bytes (not stored)

	BytesUp   int64 `json:"bytes_up"`
	BytesDown int64 `json:"bytes_down"`

	// Intercepted marks HTTPS flows whose plaintext was recovered by the
	// proxy. Non-intercepted TLS (certificate pinning) records metadata
	// only.
	Intercepted bool `json:"intercepted"`

	// Rewritten marks flows whose content the proxy's protection rewriter
	// modified before forwarding; the recorded content is what actually
	// reached the network.
	Rewritten bool `json:"rewritten,omitempty"`

	// Inline carries the inline gateway's verdict when the proxy ran in
	// detect-and-mitigate mode (docs/inline.md). Nil when the gateway was
	// off or the flow carried no ground-truth PII.
	Inline *InlineVerdict `json:"inline,omitempty"`
}

// InlineVerdict is the inline gateway's per-flow outcome: the mitigation
// action taken, the PII classes seen, and the match evidence (body
// occurrences carry absolute stream offsets, e.g.
// "E (Email) as base64 in body @12..56").
type InlineVerdict struct {
	Action   string   `json:"action"`             // log | redact | block
	Types    []string `json:"types,omitempty"`    // PII class abbreviations (Table 1 columns)
	Evidence []string `json:"evidence,omitempty"` // one line per match, stream offsets for body hits
	// Mitigated marks flows whose content was actually rewritten
	// (redact) or refused (block); log verdicts observe only.
	Mitigated bool `json:"mitigated,omitempty"`
}

// Clone returns a deep copy of the verdict.
func (v *InlineVerdict) Clone() *InlineVerdict {
	if v == nil {
		return nil
	}
	c := *v
	c.Types = append([]string(nil), v.Types...)
	c.Evidence = append([]string(nil), v.Evidence...)
	return &c
}

// Plaintext reports whether the flow's content travelled unencrypted and
// was therefore visible to on-path eavesdroppers — the paper's leak
// condition (1).
func (f *Flow) Plaintext() bool { return f.Protocol == HTTP }

// Header returns a request header (canonical lookup is case-insensitive).
func (f *Flow) Header(name string) string {
	if v, ok := f.RequestHeaders[name]; ok {
		return v
	}
	for k, v := range f.RequestHeaders {
		if strings.EqualFold(k, name) {
			return v
		}
	}
	return ""
}

// ContentType returns the request body's declared media type.
func (f *Flow) ContentType() string { return f.Header("Content-Type") }

// Cookie returns the request Cookie header.
func (f *Flow) Cookie() string { return f.Header("Cookie") }

// Sections splits the flow into the named content sections the PII matcher
// scans: the URL, the serialized request headers, and the request body.
func (f *Flow) Sections() map[string]string {
	var hdr strings.Builder
	keys := make([]string, 0, len(f.RequestHeaders))
	for k := range f.RequestHeaders {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&hdr, "%s: %s\r\n", k, f.RequestHeaders[k])
	}
	return map[string]string{
		"url":     f.URL,
		"headers": hdr.String(),
		"body":    f.RequestBody,
	}
}

// Path returns the URL path, or "" if the URL does not parse.
func (f *Flow) Path() string {
	u, err := url.Parse(f.URL)
	if err != nil {
		return ""
	}
	return u.Path
}

// Bytes returns total bytes carried by the flow in both directions.
func (f *Flow) Bytes() int64 { return f.BytesUp + f.BytesDown }

// Clone returns a deep copy of the flow.
func (f *Flow) Clone() *Flow {
	c := *f
	c.RequestHeaders = cloneMap(f.RequestHeaders)
	c.ResponseHeaders = cloneMap(f.ResponseHeaders)
	c.Inline = f.Inline.Clone()
	return &c
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
