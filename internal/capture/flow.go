// Package capture defines the flow record — the unit of analysis for the
// whole study — along with in-memory and JSONL trace stores and the
// background-traffic filter of §3.2.
//
// A Flow is one HTTP request/response exchange observed at the measurement
// proxy. The simulated clients disable connection reuse, so one flow
// corresponds to one TCP connection, matching the paper's flow counting in
// Figure 1b.
package capture

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"time"
)

// Protocol distinguishes plaintext from intercepted-TLS exchanges.
type Protocol string

const (
	HTTP  Protocol = "http"
	HTTPS Protocol = "https"
	// H2 marks intercepted HTTPS exchanges carried as HTTP/2 streams; one
	// flow per stream, with StreamID and Trailers populated.
	H2 Protocol = "h2"
	// WS marks intercepted WebSocket (wss) sessions; one flow per socket,
	// with frame-level detail in the WS field. RequestBody holds the
	// concatenated client→server data payloads (capped like HTTP bodies).
	WS Protocol = "wss"
)

// Flow is one captured request/response exchange.
type Flow struct {
	ID       int64     `json:"id"`
	Start    time.Time `json:"start"`
	Client   string    `json:"client"`   // device/session identifier
	Protocol Protocol  `json:"protocol"` // http or https
	Method   string    `json:"method"`
	Host     string    `json:"host"` // destination host (SNI / Host header)
	URL      string    `json:"url"`  // absolute request URL

	RequestHeaders  map[string]string `json:"request_headers,omitempty"`
	RequestBody     string            `json:"request_body,omitempty"`
	Status          int               `json:"status"`
	ResponseHeaders map[string]string `json:"response_headers,omitempty"`
	ResponseSize    int64             `json:"response_size"` // body bytes (not stored)

	BytesUp   int64 `json:"bytes_up"`
	BytesDown int64 `json:"bytes_down"`

	// Intercepted marks HTTPS flows whose plaintext was recovered by the
	// proxy. Non-intercepted TLS (certificate pinning) records metadata
	// only.
	Intercepted bool `json:"intercepted"`

	// Rewritten marks flows whose content the proxy's protection rewriter
	// modified before forwarding; the recorded content is what actually
	// reached the network.
	Rewritten bool `json:"rewritten,omitempty"`

	// Inline carries the inline gateway's verdict when the proxy ran in
	// detect-and-mitigate mode (docs/inline.md). Nil when the gateway was
	// off or the flow carried no ground-truth PII.
	Inline *InlineVerdict `json:"inline,omitempty"`

	// StreamID identifies the HTTP/2 stream that carried an h2 flow
	// (client-initiated, so odd: 1, 3, 5, … in arrival order). Zero for
	// every other protocol.
	StreamID int64 `json:"stream_id,omitempty"`
	// Trailers records request trailer fields received after the body
	// (HTTP/2 flows only).
	Trailers map[string]string `json:"trailers,omitempty"`
	// WS carries frame-level detail for WebSocket flows.
	WS *WSInfo `json:"ws,omitempty"`
}

// WSInfo summarizes one relayed WebSocket session: frame and message
// counts per direction, the close code observed from the client, and —
// when the inline gateway ran — which data frame each PII match completed
// in. Only the client→server direction is scanned (docs/protocols.md).
type WSInfo struct {
	FramesUp     int64 `json:"frames_up"`
	FramesDown   int64 `json:"frames_down"`
	MessagesUp   int64 `json:"messages_up"`
	MessagesDown int64 `json:"messages_down"`
	// CloseCode is the close status the client sent (0 if the socket died
	// without a close handshake).
	CloseCode int `json:"close_code,omitempty"`
	// Blocked marks sockets the inline gateway tore down mid-connection
	// (close code 1008 sent both ways).
	Blocked bool `json:"blocked,omitempty"`
	// Hits attributes inline scanner matches to data frames.
	Hits []WSFrameHit `json:"hits,omitempty"`
}

// WSFrameHit is one inline PII match attributed to the client→server data
// frame in which it completed (a needle split across frames is attributed
// to the frame carrying its last byte). Offsets are absolute positions in
// the concatenated pre-mitigation payload stream, matching the verdict's
// body evidence.
type WSFrameHit struct {
	Frame int    `json:"frame"` // 0-based data-frame index, client→server order
	Type  string `json:"type"`  // PII class abbreviation (Table 1 columns)
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// Clone returns a deep copy.
func (w *WSInfo) Clone() *WSInfo {
	if w == nil {
		return nil
	}
	c := *w
	c.Hits = append([]WSFrameHit(nil), w.Hits...)
	return &c
}

// InlineVerdict is the inline gateway's per-flow outcome: the mitigation
// action taken, the PII classes seen, and the match evidence (body
// occurrences carry absolute stream offsets, e.g.
// "E (Email) as base64 in body @12..56").
type InlineVerdict struct {
	Action   string   `json:"action"`             // log | redact | block
	Types    []string `json:"types,omitempty"`    // PII class abbreviations (Table 1 columns)
	Evidence []string `json:"evidence,omitempty"` // one line per match, stream offsets for body hits
	// Mitigated marks flows whose content was actually rewritten
	// (redact) or refused (block); log verdicts observe only.
	Mitigated bool `json:"mitigated,omitempty"`
}

// Clone returns a deep copy of the verdict.
func (v *InlineVerdict) Clone() *InlineVerdict {
	if v == nil {
		return nil
	}
	c := *v
	c.Types = append([]string(nil), v.Types...)
	c.Evidence = append([]string(nil), v.Evidence...)
	return &c
}

// Plaintext reports whether the flow's content travelled unencrypted and
// was therefore visible to on-path eavesdroppers — the paper's leak
// condition (1).
func (f *Flow) Plaintext() bool { return f.Protocol == HTTP }

// Header returns a request header (canonical lookup is case-insensitive).
func (f *Flow) Header(name string) string {
	if v, ok := f.RequestHeaders[name]; ok {
		return v
	}
	for k, v := range f.RequestHeaders {
		if strings.EqualFold(k, name) {
			return v
		}
	}
	return ""
}

// ContentType returns the request body's declared media type.
func (f *Flow) ContentType() string { return f.Header("Content-Type") }

// Cookie returns the request Cookie header.
func (f *Flow) Cookie() string { return f.Header("Cookie") }

// Sections splits the flow into the named content sections the PII matcher
// scans: the URL, the serialized request headers, and the request body.
func (f *Flow) Sections() map[string]string {
	var hdr strings.Builder
	keys := make([]string, 0, len(f.RequestHeaders))
	for k := range f.RequestHeaders {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&hdr, "%s: %s\r\n", k, f.RequestHeaders[k])
	}
	return map[string]string{
		"url":     f.URL,
		"headers": hdr.String(),
		"body":    f.RequestBody,
	}
}

// Path returns the URL path, or "" if the URL does not parse.
func (f *Flow) Path() string {
	u, err := url.Parse(f.URL)
	if err != nil {
		return ""
	}
	return u.Path
}

// Bytes returns total bytes carried by the flow in both directions.
func (f *Flow) Bytes() int64 { return f.BytesUp + f.BytesDown }

// Clone returns a deep copy of the flow.
func (f *Flow) Clone() *Flow {
	c := *f
	c.RequestHeaders = cloneMap(f.RequestHeaders)
	c.ResponseHeaders = cloneMap(f.ResponseHeaders)
	c.Inline = f.Inline.Clone()
	c.Trailers = cloneMap(f.Trailers)
	c.WS = f.WS.Clone()
	return &c
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
