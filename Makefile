# Developer entry points. `make check` is the pre-PR gate.

GO ?= go

# Packages carrying the micro-benchmarks (pii matching, easylist
# matching, proxy flow handling, trace emission).
BENCH_MICRO_PKGS = ./internal/pii ./internal/easylist ./internal/proxy ./internal/obs/trace

.PHONY: build test short race vet fmt check bench bench-micro bench-macro

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

## race: race-detect the concurrency-heavy packages (obs registry, campaign runner)
race:
	$(GO) test -race ./internal/obs/... ./internal/core/...

vet:
	$(GO) vet ./...

## fmt: fail if any file needs gofmt
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## check: the pre-PR gate — vet, formatting, race tests
check: vet fmt race
	@echo "check: OK"

## bench: all benchmarks with -benchmem; test2json event streams land in
## BENCH_micro.json / BENCH_macro.json for machine comparison (benchstat
## reads the plain-text mirror inside each stream's Output fields)
bench: bench-micro bench-macro

bench-micro:
	$(GO) test -run='^$$' -bench=. -benchmem -json $(BENCH_MICRO_PKGS) > BENCH_micro.json
	@echo "wrote BENCH_micro.json"

bench-macro:
	$(GO) test -run='^$$' -bench=. -benchmem -json . > BENCH_macro.json
	@echo "wrote BENCH_macro.json"
