# Developer entry points. `make check` is the pre-PR gate.

GO ?= go

# Micro-benchmark suites: one BENCH_<suite>.json per suite so regressions
# localize (pii matching, easylist matching, proxy flow handling, trace
# emission, the inline streaming gateway, the WS/h2 interception paths).
# docs/performance.md explains how to read the files.
BENCH_SUITES = pii easylist proxy trace inline ws
BENCH_FILES = $(foreach s,$(BENCH_SUITES),BENCH_$(s).json)

# Suites the regression gate compares against bench_baseline.json. The
# proxy suite is excluded: its benchmarks run real loopback TLS
# connections at millisecond scale, so scheduler noise swings them past
# any usable tolerance — BENCH_proxy.json is still written for manual
# benchstat comparison, it just isn't gated. The inline suite IS gated:
# BenchmarkInlineThroughput relays in memory (no TLS, no sockets), so it
# isolates the gateway's added scan cost at gateable noise levels
# (docs/inline.md). The ws suite is gated for the same reason: the frame
# relay and h2 stream benchmarks pump in-memory byte streams against a
# stubbed upstream (docs/protocols.md).
GATED_BENCH_SUITES = pii easylist trace inline ws
GATED_BENCH_FILES = $(foreach s,$(GATED_BENCH_SUITES),BENCH_$(s).json)

# Allowed fractional regression in ns/op or allocs/op before bench-check
# fails, after drift normalization (benchcheck divides out the median
# machine-speed shift). benchcheck's own default is the strict 0.20 —
# usable on quiet dedicated hardware. The Makefile default is looser
# because shared/bursty hosts show ±30% per-benchmark phases even with
# min-of-N sampling; the regressions this gate guards (scan engine
# bypassed, classification cache broken) are 5–10x, far above either
# setting. Tighten with `make bench-check BENCH_TOLERANCE=0.20`.
BENCH_TOLERANCE ?= 0.40

.PHONY: build test short race race-fault vet fmt check bench bench-micro \
	bench-macro bench-macro-gate bench-check bench-baseline \
	bench-baseline-macro bench-serve bench-serve-gate \
	bench-baseline-serve bench-shard bench-shard-gate \
	bench-baseline-shard fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

## race: race-detect the concurrency-heavy packages (obs registry, campaign
## runner incl. the fault-injection suite and journal repair, the scan
## engine + classification caches, the artifact engine's cache /
## singleflight / live-tailing paths, the WebSocket frame codec the
## two-pump relay is built on, and the shard coordinator's lease
## watchdog / reassignment machinery incl. the kill-and-reassign
## campaign tests)
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... \
		./internal/pii ./internal/easylist ./internal/domains \
		./internal/analysis ./internal/serve ./internal/ws \
		./internal/shard \
		./cmd/avwserve ./cmd/avwbench ./cmd/avwtop

## race-fault: the fault-tolerance suite under the race detector — every
## failure policy via scripted fault injection, cancellation, journal
## resume, plus the context-threaded session and proxy handshake deadline
## (docs/robustness.md). The full ./internal/proxy run also covers the
## inline gateway's concurrency suite: parallel tunneled flows through one
## shared gateway and client disconnects mid-stream (scanner-pool
## settling).
race-fault:
	$(GO) test -race ./internal/device ./internal/proxy
	$(GO) test -race -run 'TestFailurePolicy|TestExperimentTimeoutStall|TestCampaignCancel|TestProgressSlowSink|TestCampaignJournalResume' \
		./internal/core

vet:
	$(GO) vet ./...

## fmt: fail if any file needs gofmt
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## check: the pre-PR gate — vet, formatting, race tests (including the
## fault-injection suite)
check: vet fmt race race-fault
	@echo "check: OK"

## bench: all benchmarks with -benchmem; test2json event streams land in
## BENCH_<suite>.json / BENCH_macro.json for machine comparison (benchstat
## reads the plain-text mirror inside each stream's Output fields)
bench: bench-micro bench-macro

# Sampling: each benchmark runs BENCH_COUNT times at BENCH_TIME each;
# benchcheck keeps the best iteration (min-of-N), which damps the bursty
# scheduler interference a single long sample would bake in.
BENCH_COUNT ?= 6
BENCH_TIME ?= 0.5s

bench-micro:
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) -json ./internal/pii > BENCH_pii.json
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) -json ./internal/easylist > BENCH_easylist.json
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) -json ./internal/proxy > BENCH_proxy.json
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) -json ./internal/obs/trace > BENCH_trace.json
	$(GO) test -run='^$$' -bench='^BenchmarkInlineThroughput$$' -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) -json ./internal/proxy > BENCH_inline.json
	$(GO) test -run='^$$' -bench='^(BenchmarkWSRelay|BenchmarkH2Intercept)$$' -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) -json ./internal/proxy > BENCH_ws.json
	@echo "wrote $(BENCH_FILES)"

bench-macro:
	$(GO) test -run='^$$' -bench=. -benchmem -json . > BENCH_macro.json
	@echo "wrote BENCH_macro.json"

# The macro gate samples BenchmarkCampaign (a 0.05-scale full campaign,
# ~12s/iteration) plus the artifact-serving pair
# BenchmarkEngineCold/WarmArtifacts: one timed iteration, best of
# MACRO_BENCH_COUNT. It guards the zero-failure path against
# fault-tolerance overhead — a uniform campaign slowdown that the micro
# suites never see — and the engine's warm-path guarantee (a broken
# artifact cache shows up as Warm collapsing to Cold's wall time, far
# beyond any tolerance).
MACRO_BENCH_COUNT ?= 3

bench-macro-gate:
	$(GO) test -run='^$$' \
		-bench='^(BenchmarkCampaign|BenchmarkEngineColdArtifacts|BenchmarkEngineWarmArtifacts)$$' \
		-benchtime=1x -count=$(MACRO_BENCH_COUNT) -benchmem -json . > BENCH_macro_gate.json
	@echo "wrote BENCH_macro_gate.json"

## bench-check: the regression guard — fresh micro benches vs the committed
## baseline; fails on >BENCH_TOLERANCE regression in ns/op or allocs/op
# On failure the suites are resampled once: interference phases on shared
# hosts can outlast one benchmark's consecutive samples, and a genuine
# regression fails both passes anyway.
# The macro comparison holds a single benchmark, so drift normalization
# would gate nothing (the benchmark's own ratio would define the drift);
# -nodrift compares raw wall time under a looser tolerance. The campaign
# benchmark is dominated by real session work, so its wall time is far
# steadier than microsecond-scale micro benches.
MACRO_BENCH_TOLERANCE ?= 0.60

bench-check: bench-micro bench-macro-gate
	@$(GO) run ./cmd/benchcheck -baseline bench_baseline.json \
		-tol $(BENCH_TOLERANCE) $(GATED_BENCH_FILES) || { \
		echo "bench-check: failure reported; resampling once to rule out interference"; \
		$(MAKE) bench-micro; \
		$(GO) run ./cmd/benchcheck -baseline bench_baseline.json \
			-tol $(BENCH_TOLERANCE) $(GATED_BENCH_FILES); }
	@$(GO) run ./cmd/benchcheck -baseline bench_baseline_macro.json \
		-nodrift -tol $(MACRO_BENCH_TOLERANCE) BENCH_macro_gate.json || { \
		echo "bench-check: macro failure reported; resampling once to rule out interference"; \
		$(MAKE) bench-macro-gate; \
		$(GO) run ./cmd/benchcheck -baseline bench_baseline_macro.json \
			-nodrift -tol $(MACRO_BENCH_TOLERANCE) BENCH_macro_gate.json; }

## bench-baseline: regenerate the committed baselines from a fresh run
bench-baseline: bench-micro
	$(GO) run ./cmd/benchcheck -write bench_baseline.json $(GATED_BENCH_FILES)

bench-baseline-macro: bench-macro-gate
	$(GO) run ./cmd/benchcheck -write bench_baseline_macro.json BENCH_macro_gate.json

# The serve bench drives the production mux (internal/serve) over real
# loopback HTTP with avwbench: closed loop, zipfian artifact mix, half the
# repeat requests conditional. avwbench self-gates the protocol invariants
# (-min-304: revalidation must work; -max-error-rate 0: any 5xx fails) and
# writes BENCH_serve.json for the throughput/latency comparison. Like the
# macro gate it compares -nodrift (the four serve benchmarks all move
# together, so the median ratio would define the drift and gate nothing);
# per-entry "tol" values in bench_baseline_serve.json widen the band for
# the noisy tail quantiles only. docs/load-testing.md explains the knobs.
SERVE_BENCH_TOLERANCE ?= 0.60
SERVE_BENCH_FLAGS ?= -dataset dataset.json -mode closed -c 8 -warmup 1s \
	-duration 5s -zipf 1.2 -revalidate 0.5 -seed 1 -min-304 0.2

bench-serve:
	$(GO) run ./cmd/avwbench $(SERVE_BENCH_FLAGS) -bench BENCH_serve.json
	@echo "wrote BENCH_serve.json"

## bench-serve-gate: serving-path regression guard — a fresh load run vs
## the committed bench_baseline_serve.json (resampled once on failure)
bench-serve-gate: bench-serve
	@$(GO) run ./cmd/benchcheck -baseline bench_baseline_serve.json \
		-nodrift -tol $(SERVE_BENCH_TOLERANCE) BENCH_serve.json || { \
		echo "bench-serve-gate: failure reported; resampling once to rule out interference"; \
		$(MAKE) bench-serve; \
		$(GO) run ./cmd/benchcheck -baseline bench_baseline_serve.json \
			-nodrift -tol $(SERVE_BENCH_TOLERANCE) BENCH_serve.json; }

bench-baseline-serve: bench-serve
	$(GO) run ./cmd/benchcheck -write bench_baseline_serve.json BENCH_serve.json

# The shard bench pairs BenchmarkCampaign with BenchmarkShardedCampaign —
# the identical 50-service matrix, single-process vs 4 in-process shard
# workers with per-shard journals and the deterministic merge — so the
# stream doubles as a direct benchstat comparison of coordination
# overhead. Gated -nodrift like the other macro comparisons (two
# benchmarks that move together would define the drift) against
# bench_baseline_shard.json (docs/distributed.md).
SHARD_BENCH_TOLERANCE ?= 0.60

bench-shard:
	$(GO) test -run='^$$' -bench='^(BenchmarkCampaign|BenchmarkShardedCampaign)$$' \
		-benchtime=1x -count=$(MACRO_BENCH_COUNT) -benchmem -json . > BENCH_shard.json
	@echo "wrote BENCH_shard.json"

## bench-shard-gate: distributed-execution regression guard — a fresh
## sharded-vs-single sample against the committed bench_baseline_shard.json
## (resampled once on failure)
bench-shard-gate: bench-shard
	@$(GO) run ./cmd/benchcheck -baseline bench_baseline_shard.json \
		-nodrift -tol $(SHARD_BENCH_TOLERANCE) BENCH_shard.json || { \
		echo "bench-shard-gate: failure reported; resampling once to rule out interference"; \
		$(MAKE) bench-shard; \
		$(GO) run ./cmd/benchcheck -baseline bench_baseline_shard.json \
			-nodrift -tol $(SHARD_BENCH_TOLERANCE) BENCH_shard.json; }

bench-baseline-shard: bench-shard
	$(GO) run ./cmd/benchcheck -write bench_baseline_shard.json BENCH_shard.json

## fuzz: short smoke of every fuzz target (CI runs this)
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzScanDifferential -fuzztime=10s ./internal/pii
	$(GO) test -run='^$$' -fuzz=FuzzMatchPattern -fuzztime=10s ./internal/easylist
