# Developer entry points. `make check` is the pre-PR gate.

GO ?= go

.PHONY: build test short race vet fmt check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

## race: race-detect the concurrency-heavy packages (obs registry, campaign runner)
race:
	$(GO) test -race ./internal/obs/... ./internal/core/...

vet:
	$(GO) vet ./...

## fmt: fail if any file needs gofmt
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## check: the pre-PR gate — vet, formatting, race tests
check: vet fmt race
	@echo "check: OK"

bench:
	$(GO) test -bench=. -benchmem
